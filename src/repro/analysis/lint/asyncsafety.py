"""Async-safety pass: event-loop hazards in the service tier (rules
AS301–AS304, see docs/ANALYSIS.md).

The ``repro serve`` daemon's correctness argument is "one event loop
owns all state, so every mutation happens between awaits".  That
argument has three statically checkable failure modes, each a rule:

* **AS301** — a *blocking* call (``time.sleep``, synchronous
  ``urllib``/``socket``/``subprocess``, builtin ``open``) reachable
  from a coroutine via the intra-module call graph
  (:mod:`.callgraph`): it stalls every connection, lease timer and
  event stream at once.
* **AS302** — a fire-and-forget task: the handle returned by
  ``asyncio.create_task`` / ``ensure_future`` is neither stored,
  awaited, nor cancelled, so exceptions vanish and drain can never
  wait for it.  (``server.py``'s ``self._tick_task`` — stored, then
  ``.cancel()``-ed on drain — is the sanctioned shape.)
* **AS303** — a torn critical section: guarded scheduler state (the
  roots declared by a ``# repro: guarded-state[...]`` marker) is
  mutated both before and after an ``await`` in the same coroutine
  without holding an ``asyncio.Lock``; another handler can observe the
  half-applied transition at the yield point.

Sanctioned hazards are waived per line and per rule, mirroring the
ND-marker scheme — but an async waiver additionally **must carry a
justification** after the bracket::

    with open(path, "a") as h:  # repro: allow-async[AS301] bounded local append

A bare ``allow-async[...]`` marker is itself a finding (**AS304**), and
AS304 cannot be waived — writing the justification is always cheaper.

The analysis is deliberately intra-module and intra-procedural where it
must be (AS303 looks at one coroutine body at a time; cross-procedure
mutation helpers are not chased), and under-approximating everywhere
else: every finding comes with a concrete witness, so the pass stays
actionable on a tree this size.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field

from repro.analysis.lint.callgraph import (
    CallGraph,
    FunctionInfo,
    build_callgraph,
)
from repro.analysis.lint.findings import Finding, allowed_codes

__all__ = ["scan_file", "scan_source", "scan_tree"]

#: ``# repro: guarded-state[tasks, jobs, ...]`` — declares the mutation
#: roots AS303 protects (``self.<root>`` attributes and bare local
#: names).  Without a marker the module opts out of AS303.
GUARDED_RE = re.compile(r"#\s*repro:\s*guarded-state\[([^\]]*)\]")

#: An ``allow-async[...]`` marker; everything after the closing bracket
#: must be a justification (AS304).
ASYNC_ALLOW_RE = re.compile(r"#\s*repro:\s*allow-async\[[^\]]*\]")

#: Dotted call chains that block the event loop.
_BLOCKING_CALLS = {
    "time.sleep": "time.sleep()",
    "urllib.request.urlopen": "urllib.request.urlopen()",
    "socket.create_connection": "socket.create_connection()",
    "socket.socket": "socket.socket()",
    "http.client.HTTPConnection": "http.client.HTTPConnection()",
    "http.client.HTTPSConnection": "http.client.HTTPSConnection()",
}

#: Any ``subprocess.*`` call blocks (run/call/check_*/Popen().wait()).
_BLOCKING_PREFIXES = ("subprocess.",)

#: ``from mod import name`` bindings that stay blocking as bare names.
_BLOCKING_FROM = {
    ("time", "sleep"), ("urllib.request", "urlopen"),
    ("socket", "create_connection"), ("subprocess", "run"),
    ("subprocess", "call"), ("subprocess", "check_call"),
    ("subprocess", "check_output"), ("subprocess", "Popen"),
}

#: Builtins that hit the filesystem synchronously.
_BLOCKING_BUILTINS = {"open": "open()"}

#: Call-chain tails that spawn a task whose handle must not be dropped.
_SPAWN_TAILS = ("create_task", "ensure_future")

#: Method names that mutate their receiver in place (AS303).
_MUTATORS = frozenset({
    "append", "appendleft", "add", "discard", "remove", "pop", "popleft",
    "clear", "update", "extend", "insert", "setdefault", "popitem",
})

#: Name fragments that make an ``async with`` context a lock.
_LOCK_HINTS = ("lock", "sem", "mutex")


def _attr_chain(node: ast.expr) -> list[str]:
    """``a.b.c`` -> ["a", "b", "c"]; empty when not a pure name chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return []


def _guard_root(node: ast.expr) -> str | None:
    """The guarded-state root of an assignment target / receiver:
    ``self.tasks[key]`` -> ``tasks``; ``task.state`` -> ``task``."""
    parts: list[str] = []
    while True:
        if isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Name):
            parts.append(node.id)
            break
        else:
            return None
    parts.reverse()
    if parts[0] == "self":
        return parts[1] if len(parts) > 1 else None
    return parts[0]


def _own_body_walk(node: ast.AST) -> list[ast.AST]:
    """Every descendant of ``node`` that belongs to its own body — the
    walk does not descend into nested ``def`` / ``async def`` (they are
    separate call-graph functions) or ``lambda`` bodies."""
    found: list[ast.AST] = []
    stack: list[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.Lambda)):
            continue
        found.append(child)
        stack.extend(ast.iter_child_nodes(child))
    return found


@dataclass
class _FlowState:
    """AS303 dataflow: what the current fall-through path has seen."""

    pending: bool = False                     # guarded mutation seen
    open_awaits: dict[int, ast.Await] = field(default_factory=dict)

    def copy(self) -> "_FlowState":
        return _FlowState(self.pending, dict(self.open_awaits))

    def merge(self, other: "_FlowState | None") -> "_FlowState":
        if other is None:
            return self
        merged = dict(self.open_awaits)
        merged.update(other.open_awaits)
        return _FlowState(self.pending or other.pending, merged)


class _ModuleScan:
    """One file's worth of async-safety analysis."""

    def __init__(self, rel: str, source: str) -> None:
        self.rel = rel
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=rel)
        self.graph: CallGraph = build_callgraph(rel, source)
        self.findings: list[Finding] = []
        self.guarded = self._guarded_roots()
        self.blocking_aliases = self._blocking_aliases()

    # -- plumbing --------------------------------------------------------

    def _line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def _report(self, code: str, lineno: int, message: str,
                waivable: bool = True) -> None:
        if waivable and code in allowed_codes(self._line(lineno)):
            return
        self.findings.append(Finding(rule=code, path=self.rel, line=lineno,
                                     message=message))

    def _guarded_roots(self) -> frozenset[str]:
        roots: set[str] = set()
        for line in self.lines:
            match = GUARDED_RE.search(line)
            if match is not None:
                roots.update(part.strip()
                             for part in match.group(1).split(",")
                             if part.strip())
        return frozenset(roots)

    def _blocking_aliases(self) -> dict[str, str]:
        """Bare names bound by ``from mod import name`` to a blocking
        callable, anywhere in the module."""
        aliases: dict[str, str] = {}
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.ImportFrom) or node.module is None:
                continue
            for alias in node.names:
                if (node.module, alias.name) in _BLOCKING_FROM:
                    bound = alias.asname or alias.name
                    aliases[bound] = "%s.%s()" % (node.module, alias.name)
        return aliases

    # -- AS301: blocking calls on async paths ---------------------------

    def _blocking_label(self, node: ast.Call) -> str | None:
        chain = _attr_chain(node.func)
        if not chain:
            return None
        dotted = ".".join(chain)
        if dotted in _BLOCKING_CALLS:
            return _BLOCKING_CALLS[dotted]
        if any(dotted.startswith(prefix) for prefix in _BLOCKING_PREFIXES):
            return "%s()" % dotted
        if len(chain) == 1:
            name = chain[0]
            if name in _BLOCKING_BUILTINS:
                return _BLOCKING_BUILTINS[name]
            if name in self.blocking_aliases:
                return self.blocking_aliases[name]
        return None

    def _check_blocking(self) -> None:
        paths = self.graph.async_paths()
        for qualname in sorted(paths):
            info = self.graph.functions[qualname]
            path = paths[qualname]
            for node in _own_body_walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                label = self._blocking_label(node)
                if label is None:
                    continue
                if len(path) == 1:
                    where = "inside coroutine `%s`" % qualname
                else:
                    where = ("reachable from coroutine `%s` (via %s)"
                             % (path[0], " -> ".join(path)))
                self._report(
                    "AS301", node.lineno,
                    "blocking call `%s` %s blocks the whole event loop; "
                    "move it off-loop or waive it with `# repro: "
                    "allow-async[AS301] <justification>`" % (label, where))

    # -- AS302: fire-and-forget tasks -----------------------------------

    @staticmethod
    def _spawn_call(node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        chain = _attr_chain(node.func)
        return len(chain) >= 2 and chain[-1] in _SPAWN_TAILS

    def _attr_reads(self) -> frozenset[str]:
        """Attribute names read anywhere in the module (``self.X`` used
        as a value — awaited, cancelled, even just truth-tested)."""
        reads: set[str] = set()
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Attribute) \
                    and isinstance(node.ctx, ast.Load):
                reads.add(node.attr)
        return frozenset(reads)

    def _check_spawns(self) -> None:
        attr_reads = self._attr_reads()
        for qualname in sorted(self.graph.functions):
            info = self.graph.functions[qualname]
            body_nodes = _own_body_walk(info.node)
            local_reads = {node.id for node in body_nodes
                           if isinstance(node, ast.Name)
                           and isinstance(node.ctx, ast.Load)}
            for node in body_nodes:
                if isinstance(node, ast.Expr) \
                        and self._spawn_call(node.value):
                    call = node.value
                    assert isinstance(call, ast.Call)
                    self._report(
                        "AS302", call.lineno,
                        "task handle from `%s(...)` is dropped: the task "
                        "cannot be awaited or cancelled on drain, and its "
                        "exceptions vanish" % ".".join(
                            _attr_chain(call.func)))
                elif isinstance(node, ast.Assign) \
                        and self._spawn_call(node.value):
                    call = node.value
                    assert isinstance(call, ast.Call)
                    if len(node.targets) != 1:
                        continue
                    target = node.targets[0]
                    orphaned = False
                    name = ""
                    if isinstance(target, ast.Name):
                        name = target.id
                        orphaned = target.id not in local_reads
                    elif isinstance(target, ast.Attribute):
                        name = target.attr
                        orphaned = target.attr not in attr_reads
                    if orphaned:
                        self._report(
                            "AS302", call.lineno,
                            "task handle stored in `%s` is never read "
                            "again (not awaited, cancelled, or collected)"
                            % name)
            # spawn calls in any other position (argument, return value,
            # collection item) hand the handle to someone: not orphaned

    # -- AS303: torn critical sections ----------------------------------

    def _is_guarded_mutation(self, stmt: ast.stmt) -> bool:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        elif isinstance(stmt, ast.Delete):
            targets = list(stmt.targets)
        elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            func = stmt.value.func
            if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
                root = _guard_root(func.value)
                return root is not None and root in self.guarded
            return False
        for target in targets:
            if isinstance(target, ast.Tuple):
                inner: list[ast.expr] = list(target.elts)
            else:
                inner = [target]
            for element in inner:
                root = _guard_root(element)
                if root is not None and root in self.guarded:
                    return True
        return False

    @staticmethod
    def _header_exprs(stmt: ast.stmt) -> list[ast.expr]:
        """Expressions evaluated before a compound statement's body."""
        if isinstance(stmt, ast.If):
            return [stmt.test]
        if isinstance(stmt, ast.While):
            return [stmt.test]
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return [stmt.iter]
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return [item.context_expr for item in stmt.items]
        return []

    @staticmethod
    def _expr_awaits(exprs: list[ast.expr]) -> list[ast.Await]:
        awaits: list[ast.Await] = []
        for expr in exprs:
            for node in ast.walk(expr):
                if isinstance(node, ast.Await):
                    awaits.append(node)
        return awaits

    @staticmethod
    def _is_lock_context(stmt: ast.AsyncWith) -> bool:
        for item in stmt.items:
            expr = item.context_expr
            if isinstance(expr, ast.Call):
                expr = expr.func
            for part in _attr_chain(expr):
                lowered = part.lower()
                if any(hint in lowered for hint in _LOCK_HINTS):
                    return True
        return False

    def _flag_open_awaits(self, state: _FlowState,
                          flagged: dict[int, str]) -> None:
        for lineno in state.open_awaits:
            flagged.setdefault(
                lineno,
                "guarded state (%s) is mutated on both sides of this "
                "`await` without holding an asyncio.Lock: another task "
                "can observe the half-applied transition at the yield "
                "point" % ", ".join(sorted(self.guarded)))
        state.open_awaits.clear()

    def _flow_stmt(self, stmt: ast.stmt, state: _FlowState,
                   flagged: dict[int, str],
                   locked: bool) -> _FlowState | None:
        """Advance the dataflow over one statement; ``None`` when the
        fall-through path terminates."""
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return state
        simple_exprs: list[ast.expr] = []
        if isinstance(stmt, (ast.Expr, ast.Assign, ast.AugAssign,
                             ast.AnnAssign, ast.Return, ast.Assert,
                             ast.Raise)):
            simple_exprs = [child for child in ast.iter_child_nodes(stmt)
                            if isinstance(child, ast.expr)]
        for awaited in self._expr_awaits(simple_exprs
                                         + self._header_exprs(stmt)):
            if state.pending and not locked:
                state.open_awaits[awaited.lineno] = awaited
        if self._is_guarded_mutation(stmt):
            self._flag_open_awaits(state, flagged)
            state.pending = True
        if isinstance(stmt, (ast.Return, ast.Raise, ast.Break,
                             ast.Continue)):
            return None
        if isinstance(stmt, ast.If):
            then = self._flow_body(stmt.body, state.copy(), flagged, locked)
            other = self._flow_body(stmt.orelse, state.copy(), flagged,
                                    locked)
            if then is None and other is None:
                return None
            if then is None:
                return other
            return then.merge(other)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            # Two passes over the body so a loop-carried section —
            # mutate at the bottom, await at the top of the next
            # iteration — is observed.
            once = self._flow_body(stmt.body, state.copy(), flagged, locked)
            merged = state.merge(once)
            twice = self._flow_body(stmt.body, merged.copy(), flagged,
                                    locked)
            after = merged.merge(twice)
            return after if stmt.orelse == [] else \
                after.merge(self._flow_body(stmt.orelse, after.copy(),
                                            flagged, locked))
        if isinstance(stmt, ast.AsyncWith):
            inner_locked = locked or self._is_lock_context(stmt)
            return self._flow_body(stmt.body, state, flagged, inner_locked)
        if isinstance(stmt, ast.With):
            return self._flow_body(stmt.body, state, flagged, locked)
        if isinstance(stmt, ast.Try):
            after_body = self._flow_body(stmt.body, state.copy(), flagged,
                                         locked)
            merged = state.merge(after_body)
            for handler in stmt.handlers:
                merged = merged.merge(self._flow_body(
                    handler.body, merged.copy(), flagged, locked))
            merged = merged.merge(self._flow_body(
                stmt.orelse, merged.copy(), flagged, locked))
            final = self._flow_body(stmt.finalbody, merged, flagged, locked)
            return final if final is not None else merged
        return state

    def _flow_body(self, stmts: list[ast.stmt], state: _FlowState,
                   flagged: dict[int, str],
                   locked: bool) -> _FlowState | None:
        current: _FlowState | None = state
        for stmt in stmts:
            if current is None:
                return None
            current = self._flow_stmt(stmt, current, flagged, locked)
        return current

    def _check_torn_sections(self) -> None:
        if not self.guarded:
            return
        for qualname in sorted(self.graph.functions):
            info = self.graph.functions[qualname]
            if not info.is_async:
                continue
            flagged: dict[int, str] = {}
            self._flow_body(list(info.node.body), _FlowState(), flagged,
                            locked=False)
            for lineno in sorted(flagged):
                self._report("AS303", lineno,
                             "in coroutine `%s`: %s"
                             % (qualname, flagged[lineno]))

    # -- AS304: waivers must justify themselves -------------------------

    def _check_waivers(self) -> None:
        for lineno, line in enumerate(self.lines, 1):
            match = ASYNC_ALLOW_RE.search(line)
            if match is None:
                continue
            justification = line[match.end():].strip()
            if not justification:
                self._report(
                    "AS304", lineno,
                    "async waiver without a justification: follow the "
                    "bracket with why this hazard is sound, e.g. "
                    "`# repro: allow-async[AS301] bounded local append`",
                    waivable=False)

    # -- entry -----------------------------------------------------------

    def run(self) -> list[Finding]:
        self._check_blocking()
        self._check_spawns()
        self._check_torn_sections()
        self._check_waivers()
        self.findings.sort(key=lambda f: (f.line, f.rule, f.message))
        return self.findings


def scan_source(rel: str, source: str) -> list[Finding]:
    """Async-safety findings for one module's source text."""
    return _ModuleScan(rel, source).run()


def scan_file(root: str, rel: str) -> list[Finding]:
    with open(os.path.join(root, rel), encoding="utf-8") as handle:
        return scan_source(rel, handle.read())


def scan_tree(root: str, rels: tuple[str, ...]) -> list[Finding]:
    """Scan a set of package-relative files under ``root``."""
    findings: list[Finding] = []
    for rel in sorted(rels):
        findings.extend(scan_file(root, rel))
    return findings
