"""Static analysis over the ``repro`` package itself (``repro lint``).

Five AST/import-graph passes keep the reproduction trustworthy at
production scale (docs/ANALYSIS.md has the rule catalogue):

* :mod:`~repro.analysis.lint.fingerprints` — proves the sweep cache's
  code-fingerprint source lists cover every module that can affect a
  cached result (rules FP001–FP006).
* :mod:`~repro.analysis.lint.determinism` — bans nondeterminism hazards
  (wall clock, OS entropy, global RNG state, unseeded RNGs, ``id()``
  keys, set-iteration order) in results-affecting code (ND101–ND107).
* :mod:`~repro.analysis.lint.contracts` — verifies every
  ``ResourcePolicy`` subclass against the hook API declared in
  ``policies/base.py`` (PC201–PC204).
* :mod:`~repro.analysis.lint.asyncsafety` — event-loop hazards in the
  service tier, over the :mod:`~repro.analysis.lint.callgraph` layer:
  blocking calls reachable from coroutines, fire-and-forget tasks,
  torn critical sections (AS301–AS304).
* :mod:`~repro.analysis.lint.mirrors` — cross-checks the batched
  lane's declarative SoA mirror table against the scalar pipeline
  modules: coverage, refresh, read-only discipline (MC401–MC406).

Nothing in this package ever imports or executes the code it analyses —
everything is stdlib ``ast`` over source text — and the whole package is
``mypy --strict`` typed (enforced in CI).
"""

from repro.analysis.lint.findings import RULES, Finding, Rule, rule_doc

__all__ = ["Finding", "RULES", "Rule", "rule_doc"]
