"""Intra-module function/coroutine call graph (stdlib ``ast`` only).

The substrate of the async-safety pass: every ``def`` / ``async def`` in
one module becomes a node, and every call whose target resolves *inside
the same module* becomes an edge.  Resolution is deliberately
conservative and purely syntactic, in the same spirit as
:mod:`.importgraph` — nothing is imported or executed:

* ``name(...)`` resolves to a module-level function (or, from inside a
  nested function, to a sibling/enclosing nested function) of that name;
* ``self.m(...)`` / ``cls.m(...)`` resolve to a method of the enclosing
  class, when one is defined;
* ``ClassName.m(...)`` resolves to that class's method, and a bare
  ``ClassName(...)`` constructor call to ``ClassName.__init__``;
* anything else (attribute calls on arbitrary objects, calls through
  containers, imported callables) is dropped — cross-module effects are
  the import graph's job, not this one's.

Dropped edges make the graph an *under*-approximation of "can call",
which is the right direction for the async-safety pass: a blocking call
is flagged only when a concrete witness path from a coroutine exists,
so every AS301 finding is actionable.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass

__all__ = ["CallGraph", "CallSite", "FunctionInfo", "build_callgraph"]


@dataclass(frozen=True)
class FunctionInfo:
    """One ``def`` / ``async def`` in the module."""

    qualname: str            # "Class.method", "func" or "outer.inner"
    name: str
    lineno: int
    is_async: bool
    class_name: str | None   # enclosing class, when a method
    node: ast.FunctionDef | ast.AsyncFunctionDef


@dataclass(frozen=True)
class CallSite:
    """One resolved intra-module call."""

    caller: str              # qualname of the calling function
    callee: str              # qualname of the called function
    lineno: int


def _attr_chain(node: ast.expr) -> list[str]:
    """``a.b.c`` -> ["a", "b", "c"]; empty when not a pure name chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return []


class CallGraph:
    """Function-level call graph of one module."""

    def __init__(self, rel: str, functions: dict[str, FunctionInfo],
                 edges: tuple[CallSite, ...]) -> None:
        self.rel = rel
        self.functions = functions
        self.edges = edges
        self._out: dict[str, list[CallSite]] = {}
        for edge in edges:
            self._out.setdefault(edge.caller, []).append(edge)

    def calls_from(self, qualname: str) -> tuple[CallSite, ...]:
        return tuple(self._out.get(qualname, ()))

    def async_roots(self) -> tuple[str, ...]:
        """Every coroutine (``async def``) in the module, sorted."""
        return tuple(sorted(name for name, info in self.functions.items()
                            if info.is_async))

    def async_paths(self) -> dict[str, tuple[str, ...]]:
        """Witness call paths from coroutines.

        Maps every function reachable from some ``async def`` (the
        coroutines themselves included) to one shortest call path
        ``(root, ..., function)`` proving the reachability.  BFS from
        all async roots at once, visiting in sorted order, so the
        witness chosen for a function is deterministic.
        """
        paths: dict[str, tuple[str, ...]] = {}
        queue: deque[str] = deque()
        for root in self.async_roots():
            paths[root] = (root,)
            queue.append(root)
        while queue:
            current = queue.popleft()
            callees = sorted({site.callee
                              for site in self.calls_from(current)})
            for callee in callees:
                if callee in paths or callee not in self.functions:
                    continue
                paths[callee] = paths[current] + (callee,)
                queue.append(callee)
        return paths


class _Collector(ast.NodeVisitor):
    """Walks one module, recording functions and resolved call edges."""

    def __init__(self, rel: str) -> None:
        self.rel = rel
        self.functions: dict[str, FunctionInfo] = {}
        self.edges: list[CallSite] = []
        self._class_stack: list[str] = []
        self._func_stack: list[str] = []
        #: names of every method, per class (for self./Class. resolution)
        self._methods: dict[str, set[str]] = {}
        #: module-level function names
        self._module_funcs: set[str] = set()
        self._deferred: list[tuple[str, ast.Call]] = []

    # -- pass 1: collect definitions ------------------------------------

    def _qualify(self, name: str) -> str:
        if self._func_stack:
            return self._func_stack[-1] + "." + name
        if self._class_stack:
            return self._class_stack[-1] + "." + name
        return name

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self._class_stack or self._func_stack:
            return  # nested classes: out of scope for this layer
        self._class_stack.append(node.name)
        self._methods[node.name] = set()
        self.generic_visit(node)
        self._class_stack.pop()

    def _visit_func(self, node: ast.FunctionDef | ast.AsyncFunctionDef,
                    is_async: bool) -> None:
        qualname = self._qualify(node.name)
        if self._class_stack and not self._func_stack:
            self._methods[self._class_stack[-1]].add(node.name)
        elif not self._func_stack:
            self._module_funcs.add(node.name)
        self.functions[qualname] = FunctionInfo(
            qualname=qualname, name=node.name, lineno=node.lineno,
            is_async=is_async,
            class_name=self._class_stack[-1] if self._class_stack else None,
            node=node)
        self._func_stack.append(qualname)
        self.generic_visit(node)
        self._func_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_func(node, is_async=False)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_func(node, is_async=True)

    def visit_Call(self, node: ast.Call) -> None:
        if self._func_stack:
            self._deferred.append((self._func_stack[-1], node))
        self.generic_visit(node)

    # -- pass 2: resolve deferred calls ---------------------------------

    def _resolve(self, caller: str, node: ast.Call) -> str | None:
        chain = _attr_chain(node.func)
        if not chain:
            return None
        info = self.functions[caller]
        if len(chain) == 1:
            name = chain[0]
            # a nested function of the caller (or a sibling of any
            # enclosing function) wins over a module-level function of
            # the same name; a bare class-name prefix is NOT a lexical
            # scope, so the prefix must itself be a function
            parts = caller.split(".")
            for depth in range(len(parts), 0, -1):
                prefix = ".".join(parts[:depth])
                if prefix not in self.functions:
                    continue
                nested = prefix + "." + name
                if nested in self.functions:
                    return nested
            if name in self._module_funcs:
                return name
            if name in self._methods:       # ClassName(...) construction
                ctor = name + ".__init__"
                return ctor if ctor in self.functions else None
            return None
        if len(chain) == 2:
            owner, method = chain
            if owner in ("self", "cls") and info.class_name is not None:
                if method in self._methods.get(info.class_name, ()):
                    return info.class_name + "." + method
                return None
            if method in self._methods.get(owner, ()):
                return owner + "." + method
        return None

    def finish(self) -> None:
        for caller, node in self._deferred:
            callee = self._resolve(caller, node)
            if callee is not None:
                self.edges.append(CallSite(caller=caller, callee=callee,
                                           lineno=node.lineno))


def build_callgraph(rel: str, source: str) -> CallGraph:
    """Parse one module's source text into its intra-module call graph."""
    tree = ast.parse(source, filename=rel)
    collector = _Collector(rel)
    collector.visit(tree)
    collector.finish()
    return CallGraph(rel=rel, functions=collector.functions,
                     edges=tuple(collector.edges))
