"""Fingerprint coverage auditor (rules FP001–FP006).

The sweep cache (:mod:`repro.experiments.parallel`) keys every cell on a
code fingerprint computed from ``_CORE_SOURCES`` plus the cell's policy
family entry in ``_POLICY_SOURCES``.  Those lists are hand-maintained —
one forgotten module means a source edit that changes results silently
keeps serving stale cached IPC numbers.

This pass makes the lists *provably sufficient*: it computes each
family's transitive import closure (family entry modules plus the shared
run machinery, over the :mod:`~repro.analysis.lint.importgraph` graph)
and fails when the closure contains a file the fingerprint would not
hash.  Over-coverage is safe (it only widens invalidation), so explicit
directory entries are treated as deliberate bulk coverage and only
unreachable *file* entries are warned about.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.analysis.lint.findings import Finding, allowed_codes
from repro.analysis.lint.importgraph import ImportEdge, ImportGraph

__all__ = ["FingerprintSpec", "audit_fingerprints"]


@dataclass(frozen=True)
class FingerprintSpec:
    """The fingerprint configuration under audit (package-relative
    paths; sources may be files or directories)."""

    core_entries: tuple[str, ...]
    core_sources: tuple[str, ...]
    family_entries: dict[str, tuple[str, ...]]
    family_sources: dict[str, tuple[str, ...]]
    #: where the lists live, for finding locations
    spec_path: str = "experiments/parallel.py"


def _expand(graph: ImportGraph, entry: str) -> tuple[frozenset[str], bool]:
    """(files covered by one source entry, is_directory)."""
    if entry in set(graph.files):
        return frozenset({entry}), False
    prefix = entry.rstrip("/") + "/"
    members = frozenset(rel for rel in graph.files
                        if rel.startswith(prefix))
    return members, True


def _source_line(graph: ImportGraph, edge: ImportEdge) -> str:
    try:
        with open(os.path.join(graph.root, edge.src),
                  encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        if 1 <= edge.lineno <= len(lines):
            return lines[edge.lineno - 1]
    except OSError:
        pass
    return ""


def _witness(graph: ImportGraph, closure: frozenset[str],
             entries: tuple[str, ...], missing: str) -> str:
    """A human-readable reason why ``missing`` is in the closure."""
    if missing in entries:
        return "a fingerprint entry module"
    for edge in graph.edges:
        if edge.dst == missing and edge.src in closure \
                and edge.dispatch is None \
                and not edge.src.endswith("__init__.py"):
            return "imported by %s:%d" % (edge.src, edge.lineno)
    return "executed as a package __init__ of a closure module"


def audit_fingerprints(graph: ImportGraph,
                       spec: FingerprintSpec) -> list[Finding]:
    findings: list[Finding] = []
    file_set = set(graph.files)

    # -- FP003: entries must exist --------------------------------------
    def check_exists(entry: str, owner: str) -> bool:
        covered, is_dir = _expand(graph, entry)
        if not covered:
            findings.append(Finding(
                rule="FP003", path=spec.spec_path, line=1,
                message="%s lists %r which matches no file under the "
                        "package root" % (owner, entry)))
            return False
        return True

    core_cover: set[str] = set()
    core_file_entries: list[str] = []
    for entry in spec.core_sources:
        if check_exists(entry, "_CORE_SOURCES"):
            covered, is_dir = _expand(graph, entry)
            core_cover.update(covered)
            if not is_dir:
                core_file_entries.append(entry)

    family_cover: dict[str, set[str]] = {}
    family_file_entries: dict[str, list[str]] = {}
    for family, sources in spec.family_sources.items():
        family_cover[family] = set()
        family_file_entries[family] = []
        for entry in sources:
            if check_exists(entry, "_POLICY_SOURCES[%r]" % family):
                covered, is_dir = _expand(graph, entry)
                family_cover[family].update(covered)
                if not is_dir:
                    family_file_entries[family].append(entry)

    # -- FP004: the family maps must agree ------------------------------
    source_families = set(spec.family_sources)
    entry_families = set(spec.family_entries)
    for family in sorted(source_families ^ entry_families):
        where = "_POLICY_SOURCES" if family in source_families \
            else "_FAMILY_ENTRIES"
        findings.append(Finding(
            rule="FP004", path=spec.spec_path, line=1,
            message="family %r appears only in %s — the maps must "
                    "declare the same families" % (family, where)))
    for family in sorted(source_families & entry_families):
        for entry in spec.family_entries[family]:
            if entry not in file_set:
                findings.append(Finding(
                    rule="FP004", path=spec.spec_path, line=1,
                    message="_FAMILY_ENTRIES[%r] names missing module %r"
                            % (family, entry)))
            elif entry not in family_cover[family] \
                    and entry not in core_cover:
                findings.append(Finding(
                    rule="FP004", path=spec.spec_path, line=1,
                    message="_FAMILY_ENTRIES[%r] module %r is hashed by "
                            "neither _CORE_SOURCES nor its own source "
                            "list" % (family, entry)))

    # -- closures and FP001 ---------------------------------------------
    closures: dict[str, frozenset[str]] = {}
    family_roots: dict[str, tuple[str, ...]] = {}
    missing_for: dict[str, list[str]] = {}
    core_closure: frozenset[str] = frozenset()
    if spec.core_entries \
            and all(entry in file_set for entry in spec.core_entries):
        core_closure = graph.closure(spec.core_entries)
    for family in sorted(source_families & entry_families):
        entries = spec.core_entries + spec.family_entries[family]
        if any(entry not in file_set for entry in entries):
            continue  # already reported via FP003/FP004
        closure = graph.closure(entries)
        closures[family] = closure
        family_roots[family] = entries
        covered = core_cover | family_cover[family]
        for rel in sorted(closure - covered):
            missing_for.setdefault(rel, []).append(family)
    for rel in sorted(missing_for):
        families = missing_for[rel]
        closure = closures[families[0]]
        label = "families %s" % ", ".join(families) \
            if len(families) > 1 else "family %s" % families[0]
        findings.append(Finding(
            rule="FP001", path=rel, line=1,
            message="in the import closure of %s (%s) but missing from "
                    "_CORE_SOURCES/_POLICY_SOURCES — edits here would "
                    "not invalidate cached results"
                    % (label, _witness(graph, closure,
                                       family_roots[families[0]], rel))))
    if not closures and core_closure:
        # no (auditable) families: audit the core closure on its own
        for rel in sorted(core_closure - core_cover):
            findings.append(Finding(
                rule="FP001", path=rel, line=1,
                message="in the core import closure (%s) but missing "
                        "from _CORE_SOURCES — edits here would not "
                        "invalidate cached results"
                        % _witness(graph, core_closure,
                                   spec.core_entries, rel)))

    # -- FP002: unreachable explicit file entries (warnings) ------------
    all_closures: set[str] = set(core_closure)
    for closure in closures.values():
        all_closures.update(closure)
    for entry in core_file_entries:
        if all_closures and entry not in all_closures:
            findings.append(Finding(
                rule="FP002", path=entry, line=1, severity="warning",
                message="listed in _CORE_SOURCES but reached by no "
                        "family's import closure — stale entry?"))
    for family in sorted(family_file_entries):
        if family not in closures:
            continue
        for entry in family_file_entries[family]:
            if entry not in closures[family]:
                findings.append(Finding(
                    rule="FP002", path=entry, line=1, severity="warning",
                    message="listed in _POLICY_SOURCES[%r] but outside "
                            "that family's import closure — stale "
                            "entry?" % family))

    # -- FP005 / FP006: edge hygiene ------------------------------------
    for edge in graph.edges:
        if edge.dispatch is not None:
            sources = spec.family_sources.get(edge.dispatch)
            entries = spec.family_entries.get(edge.dispatch, ())
            if sources is None:
                findings.append(Finding(
                    rule="FP006", path=edge.src, line=edge.lineno,
                    message="dispatch marker names unknown family %r"
                            % edge.dispatch))
                continue
            covered = family_cover.get(edge.dispatch, set())
            if edge.dst not in covered and edge.dst not in entries:
                findings.append(Finding(
                    rule="FP006", path=edge.src, line=edge.lineno,
                    message="dispatch[%s] import of %s is not covered "
                            "by that family's fingerprint sources"
                            % (edge.dispatch, edge.dst)))
        elif edge.via_init and edge.src in all_closures \
                and not edge.src.endswith("__init__.py"):
            if "FP005" not in allowed_codes(_source_line(graph, edge)):
                findings.append(Finding(
                    rule="FP005", path=edge.src, line=edge.lineno,
                    message="imports %r through %s — import the "
                            "defining module directly so the closure "
                            "can see it" % (edge.symbol, edge.dst)))
    return findings
