"""Determinism linter: ban nondeterminism hazards in results-affecting
code (rules ND101–ND107, see docs/ANALYSIS.md).

The pass is purely syntactic (stdlib ``ast``); it scans exactly the files
that feed cached simulation results — the same closure the fingerprint
auditor computes — so "this module can change an IPC number" and "this
module must be deterministic" are enforced over the same set.

A sanctioned hazard is suppressed with a per-line, per-rule marker::

    self.rng = random.Random(seed)  # repro: allow-nondeterminism[ND105]
"""

from __future__ import annotations

import ast
import os

from repro.analysis.lint.findings import Finding, allowed_codes

__all__ = ["scan_file", "scan_source", "scan_tree"]

_WALL_CLOCK_TIME_ATTRS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns",
})
_WALL_CLOCK_DT_ATTRS = frozenset({"now", "utcnow", "today"})
_TIME_NAMES = frozenset({"time", "monotonic", "perf_counter",
                         "process_time"})


def _attr_chain(node: ast.expr) -> list[str]:
    """``a.b.c`` -> ["a", "b", "c"]; empty when not a pure name chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return []


class _Scanner(ast.NodeVisitor):
    def __init__(self, rel: str, lines: list[str]) -> None:
        self.rel = rel
        self.lines = lines
        self.findings: list[Finding] = []
        #: names bound by ``from time import ...`` / ``from random import``
        self.time_aliases: set[str] = set()
        self.random_aliases: set[str] = set()
        self.random_class_aliases: set[str] = set()

    # -- plumbing --------------------------------------------------------

    def _allowed(self, lineno: int) -> frozenset[str]:
        if 1 <= lineno <= len(self.lines):
            return allowed_codes(self.lines[lineno - 1])
        return frozenset()

    def _report(self, code: str, node: ast.AST, message: str) -> None:
        lineno = getattr(node, "lineno", 0)
        if code in self._allowed(lineno):
            return
        self.findings.append(Finding(rule=code, path=self.rel, line=lineno,
                                     message=message))

    # -- alias tracking --------------------------------------------------

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "time":
            for alias in node.names:
                if alias.name in _WALL_CLOCK_TIME_ATTRS:
                    self.time_aliases.add(alias.asname or alias.name)
        elif node.module == "random":
            for alias in node.names:
                if alias.name == "Random":
                    self.random_class_aliases.add(alias.asname or alias.name)
                else:
                    self.random_aliases.add(alias.asname or alias.name)
        self.generic_visit(node)

    # -- calls -----------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        chain = _attr_chain(node.func)
        dotted = ".".join(chain)
        if chain:
            self._check_wall_clock(node, chain, dotted)
            self._check_entropy(node, chain, dotted)
            self._check_rng(node, chain, dotted)
        self.generic_visit(node)

    def _check_wall_clock(self, node: ast.Call, chain: list[str],
                          dotted: str) -> None:
        if len(chain) >= 2 and chain[-2] == "time" \
                and chain[-1] in _WALL_CLOCK_TIME_ATTRS:
            self._report("ND101", node,
                         "wall-clock read `%s()`" % dotted)
        elif len(chain) >= 2 and chain[-2] in ("datetime", "date") \
                and chain[-1] in _WALL_CLOCK_DT_ATTRS:
            self._report("ND101", node,
                         "wall-clock read `%s()`" % dotted)
        elif len(chain) == 1 and chain[0] in self.time_aliases:
            self._report("ND101", node,
                         "wall-clock read `%s()` (imported from time)"
                         % chain[0])

    def _check_entropy(self, node: ast.Call, chain: list[str],
                       dotted: str) -> None:
        if dotted == "os.urandom":
            self._report("ND102", node, "OS entropy `os.urandom()`")
        elif len(chain) >= 2 and chain[-2] == "uuid" \
                and chain[-1] in ("uuid1", "uuid4"):
            self._report("ND102", node, "OS entropy `%s()`" % dotted)
        elif chain[0] == "secrets" and len(chain) >= 2:
            self._report("ND102", node, "OS entropy `%s()`" % dotted)

    def _check_rng(self, node: ast.Call, chain: list[str],
                   dotted: str) -> None:
        is_random_class = (
            (len(chain) == 2 and chain[0] == "random"
             and chain[1] == "Random")
            or (len(chain) == 1 and chain[0] in self.random_class_aliases))
        if is_random_class:
            if not node.args and not node.keywords:
                self._report("ND104", node,
                             "unseeded RNG `%s()`" % dotted)
            else:
                self._report(
                    "ND105", node,
                    "RNG constructed in results-affecting code "
                    "(`%s(...)`); sanction deliberate sites with "
                    "`# repro: allow-nondeterminism[ND105]`" % dotted)
            return
        if len(chain) == 2 and chain[0] == "random":
            self._report("ND103", node,
                         "process-global RNG call `%s()`" % dotted)
        elif len(chain) == 1 and chain[0] in self.random_aliases:
            self._report("ND103", node,
                         "process-global RNG call `%s()` (imported from "
                         "random)" % chain[0])

    # -- id()-keyed containers ------------------------------------------

    @staticmethod
    def _is_id_call(node: ast.expr) -> bool:
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "id")

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if self._is_id_call(node.slice):
            self._report("ND106", node,
                         "container subscripted by `id(...)` — object "
                         "addresses are not stable across runs")
        self.generic_visit(node)

    def visit_Dict(self, node: ast.Dict) -> None:
        for key in node.keys:
            if key is not None and self._is_id_call(key):
                self._report("ND106", key,
                             "dict literal keyed by `id(...)`")
        self.generic_visit(node)

    # -- set iteration order --------------------------------------------

    @staticmethod
    def _is_set_expr(node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("set", "frozenset"))

    def _check_iter(self, iter_node: ast.expr) -> None:
        if self._is_set_expr(iter_node):
            self._report("ND107", iter_node,
                         "iteration over an unsorted set expression — "
                         "wrap it in sorted(...)")

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def _visit_comp(self, node: ast.expr) -> None:
        for gen in getattr(node, "generators", []):
            self._check_iter(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_DictComp = _visit_comp
    visit_GeneratorExp = _visit_comp


def scan_source(rel: str, source: str) -> list[Finding]:
    """Determinism findings for one module's source text."""
    tree = ast.parse(source, filename=rel)
    scanner = _Scanner(rel, source.splitlines())
    scanner.visit(tree)
    return scanner.findings


def scan_file(root: str, rel: str) -> list[Finding]:
    with open(os.path.join(root, rel), encoding="utf-8") as handle:
        return scan_source(rel, handle.read())


def scan_tree(root: str, rels: tuple[str, ...]) -> list[Finding]:
    """Scan a set of package-relative files under ``root``."""
    findings: list[Finding] = []
    for rel in sorted(rels):
        findings.extend(scan_file(root, rel))
    return findings
