"""Finding records and the rule registry for ``repro lint``.

Every static-analysis pass emits :class:`Finding` records tagged with a
rule code from :data:`RULES`.  The registry is the single source of truth
for rule metadata: ``repro lint --explain CODE`` prints it, and
``docs/ANALYSIS.md`` is drift-tested against it.

Allowlisting: a finding whose source line carries a marker comment of the
form ``# repro: allow-<kind>[CODE]`` (e.g. ``# repro:
allow-nondeterminism[ND105]``, several codes comma-separated) is
suppressed.  Markers are deliberately per-line and per-rule so a
sanctioned hazard never silences a neighbouring one.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

__all__ = [
    "ALLOW_RE",
    "Finding",
    "RULES",
    "Rule",
    "allowed_codes",
    "rule_doc",
]


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    message: str
    severity: str = "error"  # "error" | "warning"

    def render(self) -> str:
        return "%s:%d: %s [%s] %s" % (
            self.path, self.line, self.severity, self.rule, self.message)

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "severity": self.severity,
            "message": self.message,
        }


@dataclass(frozen=True)
class Rule:
    """Metadata for one rule code (see docs/ANALYSIS.md)."""

    code: str
    name: str
    summary: str
    doc: str


_RULE_LIST = (
    Rule(
        "FP001", "fingerprint-closure-gap",
        "a file the cell's result can depend on is missing from the "
        "fingerprint source lists",
        "The static import closure of a policy family (computed from its "
        "entry modules plus the core run machinery) contains a module that "
        "neither `_CORE_SOURCES` nor that family's `_POLICY_SOURCES` entry "
        "covers.  Editing that module would NOT invalidate the family's "
        "cached results — the stale-IPC failure mode this auditor exists "
        "to prevent.  Fix: add the named file (or its directory) to the "
        "fingerprint lists in src/repro/experiments/parallel.py.",
    ),
    Rule(
        "FP002", "fingerprint-unreachable-source",
        "an explicitly listed fingerprint file is outside every import "
        "closure that could use it",
        "A file entry in `_CORE_SOURCES` / `_POLICY_SOURCES` is not "
        "reachable in the corresponding import closure.  Harmless for "
        "correctness (over-hashing only widens invalidation) but it "
        "usually means a stale entry or a typo, so it is reported as a "
        "warning.  Directory entries are exempt: they express deliberate "
        "bulk coverage.",
    ),
    Rule(
        "FP003", "fingerprint-missing-file",
        "a fingerprint source entry does not exist on disk",
        "An entry of `_CORE_SOURCES` / `_POLICY_SOURCES` names a path "
        "that does not exist under the package root.  `code_fingerprint()` "
        "would silently hash nothing for it, so a rename or deletion "
        "could go unnoticed.",
    ),
    Rule(
        "FP004", "fingerprint-family-drift",
        "the family maps disagree about which policy families exist",
        "`_POLICY_SOURCES` and `_FAMILY_ENTRIES` must declare exactly the "
        "same family names, and every family entry module must appear in "
        "that family's source list (or in `_CORE_SOURCES`): the auditor "
        "computes closures from the entries, so an unlisted entry would "
        "never be hashed.",
    ),
    Rule(
        "FP005", "fingerprint-reexport-import",
        "fingerprint-relevant code imports a symbol through a package "
        "__init__ re-export",
        "`from repro.pkg import symbol` resolved through `pkg/__init__.py` "
        "hides the defining module from the static import graph (the "
        "auditor includes the __init__ file but does not chase re-export "
        "chains).  Import the defining module directly, or mark a "
        "sanctioned registry lookup with `# repro: allow-reexport[FP005]` "
        "when every module behind the registry is covered by a family "
        "fingerprint.",
    ),
    Rule(
        "FP006", "fingerprint-bad-dispatch",
        "a `# repro: dispatch[FAMILY]` marker names an unknown family or "
        "an uncovered target",
        "Dispatch markers exempt a per-family lazy import (e.g. "
        "`policy_factory` importing the HILL module) from the shared core "
        "closure, because the target is hashed by that family's own "
        "fingerprint instead.  The marker is only sound if the named "
        "family exists and its source list covers the imported module.",
    ),
    Rule(
        "ND101", "wall-clock-read",
        "simulation-affecting code reads the wall clock",
        "`time.time()`, `time.monotonic()`, `time.perf_counter()`, "
        "`datetime.now()` and friends make a run depend on when it "
        "executed, so two runs of the same cell can disagree.  Sanctioned "
        "uses that only feed execution metadata (progress events, "
        "watchdog budgets) carry `# repro: allow-nondeterminism[ND101]`.",
    ),
    Rule(
        "ND102", "os-entropy",
        "simulation-affecting code draws OS entropy",
        "`os.urandom()`, `uuid.uuid1()/uuid4()` and the `secrets` module "
        "are seeded by the operating system and cannot be replayed.  All "
        "simulator randomness must flow from a seeded `random.Random` "
        "constructed from experiment configuration.",
    ),
    Rule(
        "ND103", "global-rng-call",
        "simulation-affecting code uses the process-global random module "
        "state",
        "Module-level calls such as `random.random()`, "
        "`random.randrange()` or `random.shuffle()` share one hidden RNG "
        "across the whole process, so results depend on unrelated call "
        "order (and on other threads).  Construct a dedicated seeded "
        "`random.Random` instead.",
    ),
    Rule(
        "ND104", "unseeded-rng",
        "an RNG is constructed without an explicit seed",
        "`random.Random()` with no arguments seeds from OS entropy: every "
        "run differs.  Always pass a seed derived from the experiment "
        "configuration.",
    ),
    Rule(
        "ND105", "rng-construction",
        "an RNG is constructed in simulation-affecting code",
        "Even a seeded `random.Random(seed)` is a determinism hazard "
        "unless the seed provably flows from the experiment "
        "configuration, so every construction site must be explicitly "
        "sanctioned with `# repro: allow-nondeterminism[ND105]`.  The "
        "sanctioned sites are the synthetic workload streams "
        "(workloads/generator.py), the RAND-HILL search "
        "(core/rand_hill.py) and fault injection (reliability/faults.py).",
    ),
    Rule(
        "ND106", "id-keyed-state",
        "container keyed by id(...)",
        "CPython object ids are allocation addresses: a dict or set keyed "
        "by `id(x)` iterates (and therefore feeds downstream state) in an "
        "address-dependent order that changes run to run.  Key by a "
        "stable identifier (sequence number, name) instead.",
    ),
    Rule(
        "ND107", "set-iteration-order",
        "iteration over an unsorted set expression",
        "Set iteration order depends on insertion history and hash "
        "randomization of the element types.  A `for` loop or "
        "comprehension over a set literal, `set(...)` / `frozenset(...)` "
        "call or set comprehension must wrap it in `sorted(...)` before "
        "the order can feed simulation state.",
    ),
    Rule(
        "PC201", "unknown-hook-override",
        "a policy defines a hook-shaped method the controller never calls",
        "A `ResourcePolicy` subclass defines a public method matching the "
        "hook naming pattern (`on_*`, `plan_*`, `fetch_*`, `attach`) that "
        "is not one of the hooks declared in policies/base.py — almost "
        "always a typo like `on_epoch_ends` that silently never fires.",
    ),
    Rule(
        "PC202", "hook-arity-mismatch",
        "a hook override declares a different positional arity than the "
        "base hook",
        "The controller calls hooks positionally; an override with extra "
        "or missing required parameters raises TypeError at runtime (or "
        "worse, a default swallows an argument).  Match the signature "
        "declared in policies/base.py.",
    ),
    Rule(
        "PC203", "private-attribute-write",
        "a policy writes a private attribute of the processor or its "
        "shared resources",
        "Policies must drive the machine through the sanctioned API "
        "(`partitions.set_shares`, public thread fields, hook return "
        "values).  Assigning underscore-private attributes of the `proc` "
        "argument bypasses validation and invariant checking.",
    ),
    Rule(
        "PC204", "hook-shadowed-by-value",
        "a class attribute shadows a hook with a non-function",
        "Assigning e.g. `on_cycle = None` at class level makes the "
        "controller call a non-callable (or silently skip behaviour).  "
        "Override hooks with methods only.",
    ),
)

RULES: dict[str, Rule] = {rule.code: rule for rule in _RULE_LIST}

ALLOW_RE = re.compile(
    r"#\s*repro:\s*allow-[a-z-]+\[([A-Z]{2}\d{3}(?:\s*,\s*[A-Z]{2}\d{3})*)\]")

#: ``# repro: dispatch[FAMILY]`` marker on an import line (see FP006).
DISPATCH_RE = re.compile(r"#\s*repro:\s*dispatch\[([A-Z0-9-]+)\]")


def allowed_codes(source_line: str) -> frozenset[str]:
    """Rule codes suppressed by marker comments on this source line."""
    codes: set[str] = set()
    for match in ALLOW_RE.finditer(source_line):
        codes.update(part.strip() for part in match.group(1).split(","))
    return frozenset(codes)


def rule_doc(code: str) -> str:
    """The ``--explain`` text for one rule code (KeyError if unknown)."""
    rule = RULES[code]
    return "%s (%s)\n  %s\n\n%s" % (rule.code, rule.name, rule.summary,
                                    rule.doc)
