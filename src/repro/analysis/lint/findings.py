"""Finding records and the rule registry for ``repro lint``.

Every static-analysis pass emits :class:`Finding` records tagged with a
rule code from :data:`RULES`.  The registry is the single source of truth
for rule metadata: ``repro lint --explain CODE`` prints it, and
``docs/ANALYSIS.md`` is drift-tested against it.

Allowlisting: a finding whose source line carries a marker comment of the
form ``# repro: allow-<kind>[CODE]`` (e.g. ``# repro:
allow-nondeterminism[ND105]``, several codes comma-separated) is
suppressed.  Markers are deliberately per-line and per-rule so a
sanctioned hazard never silences a neighbouring one.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

__all__ = [
    "ALLOW_RE",
    "Finding",
    "RULES",
    "Rule",
    "allowed_codes",
    "rule_doc",
]


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    message: str
    severity: str = "error"  # "error" | "warning"

    def render(self) -> str:
        return "%s:%d: %s [%s] %s" % (
            self.path, self.line, self.severity, self.rule, self.message)

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "severity": self.severity,
            "message": self.message,
        }


@dataclass(frozen=True)
class Rule:
    """Metadata for one rule code (see docs/ANALYSIS.md)."""

    code: str
    name: str
    summary: str
    doc: str


_RULE_LIST = (
    Rule(
        "FP001", "fingerprint-closure-gap",
        "a file the cell's result can depend on is missing from the "
        "fingerprint source lists",
        "The static import closure of a policy family (computed from its "
        "entry modules plus the core run machinery) contains a module that "
        "neither `_CORE_SOURCES` nor that family's `_POLICY_SOURCES` entry "
        "covers.  Editing that module would NOT invalidate the family's "
        "cached results — the stale-IPC failure mode this auditor exists "
        "to prevent.  Fix: add the named file (or its directory) to the "
        "fingerprint lists in src/repro/experiments/parallel.py.",
    ),
    Rule(
        "FP002", "fingerprint-unreachable-source",
        "an explicitly listed fingerprint file is outside every import "
        "closure that could use it",
        "A file entry in `_CORE_SOURCES` / `_POLICY_SOURCES` is not "
        "reachable in the corresponding import closure.  Harmless for "
        "correctness (over-hashing only widens invalidation) but it "
        "usually means a stale entry or a typo, so it is reported as a "
        "warning.  Directory entries are exempt: they express deliberate "
        "bulk coverage.",
    ),
    Rule(
        "FP003", "fingerprint-missing-file",
        "a fingerprint source entry does not exist on disk",
        "An entry of `_CORE_SOURCES` / `_POLICY_SOURCES` names a path "
        "that does not exist under the package root.  `code_fingerprint()` "
        "would silently hash nothing for it, so a rename or deletion "
        "could go unnoticed.",
    ),
    Rule(
        "FP004", "fingerprint-family-drift",
        "the family maps disagree about which policy families exist",
        "`_POLICY_SOURCES` and `_FAMILY_ENTRIES` must declare exactly the "
        "same family names, and every family entry module must appear in "
        "that family's source list (or in `_CORE_SOURCES`): the auditor "
        "computes closures from the entries, so an unlisted entry would "
        "never be hashed.",
    ),
    Rule(
        "FP005", "fingerprint-reexport-import",
        "fingerprint-relevant code imports a symbol through a package "
        "__init__ re-export",
        "`from repro.pkg import symbol` resolved through `pkg/__init__.py` "
        "hides the defining module from the static import graph (the "
        "auditor includes the __init__ file but does not chase re-export "
        "chains).  Import the defining module directly, or mark a "
        "sanctioned registry lookup with `# repro: allow-reexport[FP005]` "
        "when every module behind the registry is covered by a family "
        "fingerprint.",
    ),
    Rule(
        "FP006", "fingerprint-bad-dispatch",
        "a `# repro: dispatch[FAMILY]` marker names an unknown family or "
        "an uncovered target",
        "Dispatch markers exempt a per-family lazy import (e.g. "
        "`policy_factory` importing the HILL module) from the shared core "
        "closure, because the target is hashed by that family's own "
        "fingerprint instead.  The marker is only sound if the named "
        "family exists and its source list covers the imported module.",
    ),
    Rule(
        "ND101", "wall-clock-read",
        "simulation-affecting code reads the wall clock",
        "`time.time()`, `time.monotonic()`, `time.perf_counter()`, "
        "`datetime.now()` and friends make a run depend on when it "
        "executed, so two runs of the same cell can disagree.  Sanctioned "
        "uses that only feed execution metadata (progress events, "
        "watchdog budgets) carry `# repro: allow-nondeterminism[ND101]`.",
    ),
    Rule(
        "ND102", "os-entropy",
        "simulation-affecting code draws OS entropy",
        "`os.urandom()`, `uuid.uuid1()/uuid4()` and the `secrets` module "
        "are seeded by the operating system and cannot be replayed.  All "
        "simulator randomness must flow from a seeded `random.Random` "
        "constructed from experiment configuration.",
    ),
    Rule(
        "ND103", "global-rng-call",
        "simulation-affecting code uses the process-global random module "
        "state",
        "Module-level calls such as `random.random()`, "
        "`random.randrange()` or `random.shuffle()` share one hidden RNG "
        "across the whole process, so results depend on unrelated call "
        "order (and on other threads).  Construct a dedicated seeded "
        "`random.Random` instead.",
    ),
    Rule(
        "ND104", "unseeded-rng",
        "an RNG is constructed without an explicit seed",
        "`random.Random()` with no arguments seeds from OS entropy: every "
        "run differs.  Always pass a seed derived from the experiment "
        "configuration.",
    ),
    Rule(
        "ND105", "rng-construction",
        "an RNG is constructed in simulation-affecting code",
        "Even a seeded `random.Random(seed)` is a determinism hazard "
        "unless the seed provably flows from the experiment "
        "configuration, so every construction site must be explicitly "
        "sanctioned with `# repro: allow-nondeterminism[ND105]`.  The "
        "sanctioned sites are the synthetic workload streams "
        "(workloads/generator.py), the RAND-HILL search "
        "(core/rand_hill.py) and fault injection (reliability/faults.py).",
    ),
    Rule(
        "ND106", "id-keyed-state",
        "container keyed by id(...)",
        "CPython object ids are allocation addresses: a dict or set keyed "
        "by `id(x)` iterates (and therefore feeds downstream state) in an "
        "address-dependent order that changes run to run.  Key by a "
        "stable identifier (sequence number, name) instead.",
    ),
    Rule(
        "ND107", "set-iteration-order",
        "iteration over an unsorted set expression",
        "Set iteration order depends on insertion history and hash "
        "randomization of the element types.  A `for` loop or "
        "comprehension over a set literal, `set(...)` / `frozenset(...)` "
        "call or set comprehension must wrap it in `sorted(...)` before "
        "the order can feed simulation state.",
    ),
    Rule(
        "PC201", "unknown-hook-override",
        "a policy defines a hook-shaped method the controller never calls",
        "A `ResourcePolicy` subclass defines a public method matching the "
        "hook naming pattern (`on_*`, `plan_*`, `fetch_*`, `attach`) that "
        "is not one of the hooks declared in policies/base.py — almost "
        "always a typo like `on_epoch_ends` that silently never fires.",
    ),
    Rule(
        "PC202", "hook-arity-mismatch",
        "a hook override declares a different positional arity than the "
        "base hook",
        "The controller calls hooks positionally; an override with extra "
        "or missing required parameters raises TypeError at runtime (or "
        "worse, a default swallows an argument).  Match the signature "
        "declared in policies/base.py.",
    ),
    Rule(
        "PC203", "private-attribute-write",
        "a policy writes a private attribute of the processor or its "
        "shared resources",
        "Policies must drive the machine through the sanctioned API "
        "(`partitions.set_shares`, public thread fields, hook return "
        "values).  Assigning underscore-private attributes of the `proc` "
        "argument bypasses validation and invariant checking.",
    ),
    Rule(
        "PC204", "hook-shadowed-by-value",
        "a class attribute shadows a hook with a non-function",
        "Assigning e.g. `on_cycle = None` at class level makes the "
        "controller call a non-callable (or silently skip behaviour).  "
        "Override hooks with methods only.",
    ),
    Rule(
        "AS301", "blocking-call-in-coroutine",
        "a blocking call is reachable from an `async def` via the "
        "intra-module call graph",
        "The service daemon runs one event loop that owns every lease "
        "timer, connection and event stream; a synchronous `time.sleep`, "
        "`urllib`/`socket` request, `subprocess` wait or builtin `open()` "
        "on a coroutine's call path stalls all of them at once.  The "
        "finding names a concrete witness path.  Move the work off-loop "
        "(executor, pre-computed data) or sanction a deliberately "
        "bounded call with `# repro: allow-async[AS301] <justification>`.",
    ),
    Rule(
        "AS302", "fire-and-forget-task",
        "a spawned task's handle is neither stored, awaited, nor "
        "cancelled",
        "`asyncio.create_task` / `ensure_future` whose handle is dropped "
        "(bare expression statement) or stored in a never-read binding "
        "cannot be awaited or cancelled on drain, and any exception it "
        "raises vanishes into the loop's exception handler.  The "
        "sanctioned shape is server.py's `_tick_task`: store the handle, "
        "`.cancel()` it in shutdown.",
    ),
    Rule(
        "AS303", "await-in-critical-section",
        "guarded state is mutated on both sides of an `await` without "
        "holding a lock",
        "The daemon's locking discipline is \"every mutation happens "
        "between awaits\": a coroutine that mutates lease/queue/journal "
        "state (the roots named by the module's `# repro: "
        "guarded-state[...]` marker), awaits, then mutates again has "
        "torn the transition — another handler interleaves at the yield "
        "point and observes half-applied state.  Finish the mutation "
        "before awaiting, hold the owning `asyncio.Lock` across the "
        "section, or waive a proven-benign yield with `# repro: "
        "allow-async[AS303] <justification>`.",
    ),
    Rule(
        "AS304", "async-waiver-without-justification",
        "an `allow-async[...]` waiver carries no justification text",
        "Async waivers are load-bearing: each one asserts a hazard is "
        "sound (a bounded local file append, a wrap-around yield that "
        "re-validates state).  A bare marker records the suppression but "
        "not the argument, so the next editor cannot re-check it.  "
        "Follow the bracket with one line of why.  This rule cannot "
        "itself be waived.",
    ),
    Rule(
        "MC401", "mirror-undeclared",
        "a SoA array is allocated without a mirror declaration",
        "Every structure-of-arrays array the batched core allocates must "
        "declare the scalar field(s) it shadows with `# repro: "
        "mirror[_attr <- Class.field]` on the allocation line.  An "
        "undeclared array is invisible to the cross-check, so nothing "
        "would catch its refresh going stale.",
    ),
    Rule(
        "MC402", "mirror-unknown-source",
        "a mirror declaration cites a scalar field that does not exist",
        "The declared source `Class.field` was not found in the scalar "
        "source modules (pipeline/processor.py, pipeline/resources.py).  "
        "This is the drift catcher: rename or remove a scalar field the "
        "screen depends on and this fires on the stale declaration, "
        "forcing the batched refresh to be revisited in the same change.",
    ),
    Rule(
        "MC403", "mirror-not-refreshed",
        "a declared mirror is never written by the refresh method",
        "The `# repro: mirror-refresh` method must store every declared "
        "mirror each round; one it never writes keeps its construction "
        "value forever, so the vectorized screen reads permanently stale "
        "state for that column.",
    ),
    Rule(
        "MC404", "mirror-write-outside-refresh",
        "a mirror array is written outside the refresh method",
        "Mirrors are read-only copies of scalar state: the byte-identity "
        "argument (docs/INTERNALS.md §1c) is that scheduling reads "
        "mirrors but only the scalar machine is authoritative.  Any "
        "store outside `__init__` and the refresh method makes the "
        "mirror a second source of truth that can diverge.",
    ),
    Rule(
        "MC405", "mirror-dangling-declaration",
        "a mirror declaration names an array that is never allocated",
        "The declaration cites a SoA attribute `__init__` does not "
        "allocate — usually a leftover after a mirror was removed or "
        "renamed.  Stale declarations rot the table's value as "
        "documentation, so they are errors, not warnings.",
    ),
    Rule(
        "MC406", "mirror-refresh-marker",
        "the mirror class has no unique `# repro: mirror-refresh` method",
        "Refresh coverage (MC403) and write containment (MC404) are "
        "defined relative to one sanctioned writer.  A class that "
        "declares mirrors must mark exactly one method with `# repro: "
        "mirror-refresh` on its `def` line; zero or several markers "
        "make the contract unverifiable.",
    ),
)

RULES: dict[str, Rule] = {rule.code: rule for rule in _RULE_LIST}

ALLOW_RE = re.compile(
    r"#\s*repro:\s*allow-[a-z-]+\[([A-Z]{2}\d{3}(?:\s*,\s*[A-Z]{2}\d{3})*)\]")

#: ``# repro: dispatch[FAMILY]`` marker on an import line (see FP006).
DISPATCH_RE = re.compile(r"#\s*repro:\s*dispatch\[([A-Z0-9-]+)\]")


def allowed_codes(source_line: str) -> frozenset[str]:
    """Rule codes suppressed by marker comments on this source line."""
    codes: set[str] = set()
    for match in ALLOW_RE.finditer(source_line):
        codes.update(part.strip() for part in match.group(1).split(","))
    return frozenset(codes)


def rule_doc(code: str) -> str:
    """The ``--explain`` text for one rule code (KeyError if unknown)."""
    rule = RULES[code]
    return "%s (%s)\n  %s\n\n%s" % (rule.code, rule.name, rule.summary,
                                    rule.doc)
