"""Mirror-coverage pass: the batched lane's SoA arrays vs the scalar
machine (rules MC401–MC406, see docs/ANALYSIS.md).

The batched core's byte-identity argument (docs/INTERNALS.md §1c) rests
on its structure-of-arrays mirrors being exactly that — *mirrors*:
read-only copies of scalar per-cell/per-thread state, refreshed from
the authoritative objects before every screen.  That contract has a
silent failure mode the equivalence tests only catch probabilistically:
rename or add a scalar field the screen depends on, forget the batched
refresh, and the mirror goes stale — the screen nominates the wrong
cells, and only the per-cell ``quiescent_horizon`` confirmation stands
between that and a wrong result.

This pass makes the mirror table *declarative* and cross-checked.
Every SoA allocation in the mirror class carries a declaration naming
the scalar field(s) it shadows::

    self._occ_iq = _np.zeros(...)  # repro: mirror[_occ_iq <- _ThreadState.iq_int]

and exactly one method is marked as the refresh point::

    def _refresh(self, active):  # repro: mirror-refresh

The pass then proves, purely from the ASTs of the batched module and
the scalar source modules:

* **MC401** every SoA array allocated in ``__init__`` has a declaration;
* **MC402** every declared source ``Class.attr`` names a real attribute
  of a real class in the scalar modules (the drift catcher);
* **MC403** every declared mirror is written by the refresh method;
* **MC404** no mirror is written anywhere else (``__init__`` excepted) —
  mirrors are read-only outside the refresh;
* **MC405** no declaration names a mirror that is never allocated;
* **MC406** the refresh marker exists and is unique.

Like every lint pass this is stdlib-``ast`` only: numpy is never
imported, so ``repro lint`` stays runnable on stdlib-only installs even
though the module it checks guards a numpy dependency.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass

from repro.analysis.lint.findings import Finding, allowed_codes

__all__ = [
    "MIRROR_DECL_RE",
    "MIRROR_REFRESH_RE",
    "check_module",
    "scan_sources",
]

#: ``# repro: mirror[_attr <- Class.field, Class.other]``
MIRROR_DECL_RE = re.compile(
    r"#\s*repro:\s*mirror\[\s*(\w+)\s*<-\s*([^\]]+?)\s*\]")

#: ``# repro: mirror-refresh`` on the refresh method's ``def`` line.
MIRROR_REFRESH_RE = re.compile(r"#\s*repro:\s*mirror-refresh\b")

#: numpy namespaces the mirror class may allocate through.
_NUMPY_ROOTS = frozenset({"_np", "np", "numpy"})

#: numpy constructors that allocate a mirror array.
_ALLOC_TAILS = frozenset({
    "zeros", "ones", "full", "empty", "zeros_like", "ones_like",
    "full_like", "empty_like", "arange",
})


@dataclass(frozen=True)
class MirrorDecl:
    """One declared mirror: SoA attribute and its scalar sources."""

    attr: str
    sources: tuple[str, ...]   # "Class.field" strings, as written
    line: int


def _attr_chain(node: ast.expr) -> list[str]:
    """``a.b.c`` -> ["a", "b", "c"]; empty when not a pure name chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return []


def _self_store_attr(target: ast.expr) -> str | None:
    """``self.X = ...`` / ``self.X[...] = ...`` -> ``X``; else None."""
    if isinstance(target, ast.Subscript):
        target = target.value
    if isinstance(target, ast.Attribute) \
            and isinstance(target.value, ast.Name) \
            and target.value.id == "self":
        return target.attr
    return None


def _is_numpy_alloc(value: ast.expr) -> bool:
    if not isinstance(value, ast.Call):
        return False
    chain = _attr_chain(value.func)
    return (len(chain) >= 2 and chain[0] in _NUMPY_ROOTS
            and chain[-1] in _ALLOC_TAILS)


def source_fields(source: str, rel: str) -> dict[str, frozenset[str]]:
    """Attribute names per top-level class of one scalar source module.

    An "attribute" is anything a mirror declaration may cite: a
    ``self.X`` assignment in any method, a class-level (possibly
    annotated) assignment, or a method/property name.
    """
    tree = ast.parse(source, filename=rel)
    fields: dict[str, set[str]] = {}
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        names = fields.setdefault(node.name, set())
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                names.add(stmt.name)
                for inner in ast.walk(stmt):
                    targets: list[ast.expr] = []
                    if isinstance(inner, ast.Assign):
                        targets = list(inner.targets)
                    elif isinstance(inner, (ast.AugAssign, ast.AnnAssign)):
                        targets = [inner.target]
                    for target in targets:
                        if isinstance(target, ast.Tuple):
                            elements: list[ast.expr] = list(target.elts)
                        else:
                            elements = [target]
                        for element in elements:
                            attr = _self_store_attr(element)
                            if attr is not None:
                                names.add(attr)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(stmt, ast.AnnAssign) \
                    and isinstance(stmt.target, ast.Name):
                names.add(stmt.target.id)
    return {name: frozenset(values) for name, values in fields.items()}


class _ClassAudit:
    """Mirror audit of one top-level class in the batched module."""

    def __init__(self, rel: str, lines: list[str], node: ast.ClassDef,
                 fields: dict[str, frozenset[str]]) -> None:
        self.rel = rel
        self.lines = lines
        self.node = node
        self.fields = fields
        self.findings: list[Finding] = []

    def _line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def _report(self, code: str, lineno: int, message: str) -> None:
        if code in allowed_codes(self._line(lineno)):
            return
        self.findings.append(Finding(rule=code, path=self.rel, line=lineno,
                                     message=message))

    def _declarations(self) -> list[MirrorDecl]:
        end = self.node.end_lineno or self.node.lineno
        decls: list[MirrorDecl] = []
        for lineno in range(self.node.lineno, end + 1):
            match = MIRROR_DECL_RE.search(self._line(lineno))
            if match is None:
                continue
            sources = tuple(part.strip()
                            for part in match.group(2).split(",")
                            if part.strip())
            decls.append(MirrorDecl(attr=match.group(1), sources=sources,
                                    line=lineno))
        return decls

    def _methods(self) -> dict[str, ast.FunctionDef | ast.AsyncFunctionDef]:
        return {stmt.name: stmt for stmt in self.node.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))}

    def _allocations(self) -> dict[str, int]:
        """SoA arrays allocated in ``__init__``: attr -> line."""
        init = self._methods().get("__init__")
        if init is None:
            return {}
        allocs: dict[str, int] = {}
        for inner in ast.walk(init):
            if not isinstance(inner, ast.Assign):
                continue
            if not _is_numpy_alloc(inner.value):
                continue
            for target in inner.targets:
                attr = _self_store_attr(target)
                if attr is not None and not isinstance(target,
                                                       ast.Subscript):
                    allocs.setdefault(attr, inner.lineno)
        return allocs

    @staticmethod
    def _stores(method: ast.FunctionDef | ast.AsyncFunctionDef,
                attrs: frozenset[str]) -> dict[str, list[int]]:
        """Lines where ``method`` stores to each of ``attrs``."""
        stores: dict[str, list[int]] = {}
        for inner in ast.walk(method):
            targets: list[ast.expr] = []
            if isinstance(inner, ast.Assign):
                targets = list(inner.targets)
            elif isinstance(inner, (ast.AugAssign, ast.AnnAssign)):
                targets = [inner.target]
            elif isinstance(inner, ast.Delete):
                targets = list(inner.targets)
            for target in targets:
                attr = _self_store_attr(target)
                if attr in attrs:
                    assert attr is not None
                    stores.setdefault(attr, []).append(inner.lineno)
        return stores

    def _refresh_method(self) -> str | None:
        """The unique ``# repro: mirror-refresh``-marked method name, or
        None after reporting MC406."""
        marked = [name for name, method in sorted(self._methods().items())
                  if MIRROR_REFRESH_RE.search(self._line(method.lineno))]
        if len(marked) == 1:
            return marked[0]
        if len(marked) == 0:
            self._report(
                "MC406", self.node.lineno,
                "class `%s` declares mirrors but no method carries the "
                "`# repro: mirror-refresh` marker, so refresh coverage "
                "cannot be checked" % self.node.name)
        else:
            self._report(
                "MC406", self.node.lineno,
                "class `%s` marks %d methods as the mirror refresh (%s); "
                "exactly one must own all mirror writes"
                % (self.node.name, len(marked), ", ".join(marked)))
        return None

    def run(self) -> list[Finding]:
        decls = self._declarations()
        allocs = self._allocations()
        if not decls and not allocs:
            return self.findings
        declared = {decl.attr for decl in decls}

        # MC401: every SoA allocation is declared.
        for attr in sorted(allocs):
            if attr not in declared:
                self._report(
                    "MC401", allocs[attr],
                    "SoA array `%s` has no mirror declaration; state its "
                    "scalar source with `# repro: mirror[%s <- "
                    "Class.field]`" % (attr, attr))

        # MC405: every declaration names an allocated array.
        for decl in decls:
            if decl.attr not in allocs:
                self._report(
                    "MC405", decl.line,
                    "mirror declaration names `%s`, but `%s.__init__` "
                    "allocates no such SoA array — stale declaration?"
                    % (decl.attr, self.node.name))

        # MC402: every declared source resolves in the scalar modules.
        known_classes = ", ".join(sorted(self.fields)) or "(none)"
        for decl in decls:
            for source in decl.sources:
                class_name, _, field = source.partition(".")
                if not field or class_name not in self.fields:
                    self._report(
                        "MC402", decl.line,
                        "mirror source `%s` does not name a known scalar "
                        "class (have: %s)" % (source, known_classes))
                elif field not in self.fields[class_name]:
                    self._report(
                        "MC402", decl.line,
                        "mirror source `%s`: class `%s` has no attribute "
                        "`%s` in the scalar modules — renamed or removed "
                        "field?" % (source, class_name, field))

        refresh = self._refresh_method()
        if refresh is None:
            return self.findings
        methods = self._methods()
        mirror_attrs = frozenset(declared | set(allocs))

        # MC403: the refresh method writes every declared mirror.
        refreshed = self._stores(methods[refresh], mirror_attrs)
        for decl in decls:
            if decl.attr in allocs and decl.attr not in refreshed:
                self._report(
                    "MC403", decl.line,
                    "mirror `%s` is declared but `%s()` never writes it: "
                    "the screen would read a stale array"
                    % (decl.attr, refresh))

        # MC404: nothing else writes a mirror.
        for name in sorted(methods):
            if name in ("__init__", refresh):
                continue
            for attr, linenos in sorted(
                    self._stores(methods[name], mirror_attrs).items()):
                for lineno in linenos:
                    self._report(
                        "MC404", lineno,
                        "mirror `%s` is written outside the refresh "
                        "method (`%s()` is the only sanctioned writer): "
                        "mirrors are read-only copies of scalar state"
                        % (attr, refresh))
        return self.findings


def scan_sources(rel: str, source: str,
                 scalar_sources: dict[str, str]) -> list[Finding]:
    """Mirror findings for one batched-module source against the scalar
    source texts (``{rel: source}``)."""
    fields: dict[str, frozenset[str]] = {}
    for scalar_rel in sorted(scalar_sources):
        for name, values in source_fields(scalar_sources[scalar_rel],
                                          scalar_rel).items():
            fields[name] = fields.get(name, frozenset()) | values
    tree = ast.parse(source, filename=rel)
    lines = source.splitlines()
    findings: list[Finding] = []
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            findings.extend(_ClassAudit(rel, lines, node, fields).run())
    findings.sort(key=lambda f: (f.line, f.rule, f.message))
    return findings


def check_module(root: str, rel: str,
                 source_rels: tuple[str, ...]) -> list[Finding]:
    """Audit one on-disk batched module against on-disk scalar modules."""
    def _read(relpath: str) -> str:
        with open(os.path.join(root, relpath), encoding="utf-8") as handle:
            return handle.read()

    scalars = {source_rel: _read(source_rel)
               for source_rel in source_rels
               if os.path.exists(os.path.join(root, source_rel))}
    return scan_sources(rel, _read(rel), scalars)
