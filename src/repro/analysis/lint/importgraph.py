"""Static import graph of a Python package (stdlib ``ast`` only).

Builds a file-level import graph without executing any code: every
``import`` / ``from ... import`` statement in every module of the package
becomes an edge to the module file it resolves to (imports of external
packages are ignored).  The graph is the substrate of the fingerprint
auditor and of the ``REPRO_FINGERPRINT_MODE=graph`` cache-key mode, so
its semantics are deliberately conservative:

* **Function-level (lazy) imports count.**  A module imported inside a
  function still runs that module's code when the function executes, so
  it can affect results exactly like a top-level import.
* **``from pkg import name``** resolves to the module ``pkg/name.py``
  when one exists; otherwise it is a *symbol* import through
  ``pkg/__init__.py`` and the edge targets the ``__init__`` file with
  ``via_init=True`` (the fingerprint auditor rejects those in
  results-affecting code — rule FP005 — because re-export chains are not
  chased).
* **Package ``__init__`` files are included but not traversed.**
  Importing ``repro.a.b`` executes ``repro/__init__.py`` and
  ``repro/a/__init__.py``, so closures include every ancestor
  ``__init__`` *file*; their out-edges are re-export/registry wiring and
  are not followed (symbol imports through them are policed by FP005
  instead).
* **``# repro: dispatch[FAMILY]``** on an import line marks a per-family
  dispatch point (e.g. the sweep worker importing one policy family's
  module).  Dispatch edges are excluded from every closure — the named
  family's own fingerprint covers the target — and the auditor verifies
  that claim (rule FP006).
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass

from repro.analysis.lint.findings import DISPATCH_RE

__all__ = ["ImportEdge", "ImportGraph", "build_graph", "closure_files"]


@dataclass(frozen=True)
class ImportEdge:
    """One import statement resolved inside the package."""

    src: str           # module file, relative to the package root
    dst: str           # target module file, relative to the package root
    lineno: int
    lazy: bool         # statement sits inside a function body
    via_init: bool     # symbol import resolved to a package __init__.py
    dispatch: str | None  # family tag from ``# repro: dispatch[FAM]``
    symbol: str | None    # imported name for ``from mod import name``


class ImportGraph:
    """File-level import graph of one package tree."""

    def __init__(self, root: str, package: str, files: tuple[str, ...],
                 edges: tuple[ImportEdge, ...]) -> None:
        self.root = root          # directory containing the package source
        self.package = package    # top-level package name, e.g. "repro"
        self.files = files        # every module file, package-relative
        self.edges = edges
        self._file_set = frozenset(files)
        self._out: dict[str, list[ImportEdge]] = {}
        for edge in edges:
            self._out.setdefault(edge.src, []).append(edge)

    def edges_from(self, rel: str) -> tuple[ImportEdge, ...]:
        return tuple(self._out.get(rel, ()))

    def ancestor_inits(self, rel: str) -> tuple[str, ...]:
        """Every package ``__init__.py`` executed when ``rel`` is
        imported (outermost first), excluding ``rel`` itself."""
        inits = []
        parts = rel.split("/")[:-1]
        for depth in range(len(parts) + 1):
            init = "/".join(parts[:depth] + ["__init__.py"]) \
                if depth else "__init__.py"
            if init != rel and init in self._file_set:
                inits.append(init)
        return tuple(inits)

    def closure(self, entries: tuple[str, ...]) -> frozenset[str]:
        """Transitive results-affecting closure from entry files.

        Follows every non-dispatch edge; includes (but never traverses
        out of) ``__init__`` files; includes every visited file's
        ancestor ``__init__`` files.
        """
        seen: set[str] = set()
        stack = [rel for rel in entries]
        while stack:
            rel = stack.pop()
            if rel in seen:
                continue
            seen.add(rel)
            for init in self.ancestor_inits(rel):
                if init not in seen:
                    seen.add(init)
            if os.path.basename(rel) == "__init__.py":
                continue  # registry/re-export wiring: file only
            for edge in self.edges_from(rel):
                if edge.dispatch is not None:
                    continue  # covered by the named family's fingerprint
                if edge.dst not in seen:
                    stack.append(edge.dst)
        return frozenset(seen)


def _module_files(root: str) -> tuple[str, ...]:
    files = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        for name in sorted(filenames):
            if name.endswith(".py"):
                full = os.path.join(dirpath, name)
                files.append(os.path.relpath(full, root).replace(os.sep, "/"))
    return tuple(files)


def _rel_to_module(rel: str, package: str) -> str:
    """``experiments/parallel.py`` -> ``repro.experiments.parallel``."""
    if rel.endswith("/__init__.py"):
        rel = rel[: -len("/__init__.py")]
    elif rel == "__init__.py":
        return package
    elif rel.endswith(".py"):
        rel = rel[:-3]
    return package + "." + rel.replace("/", ".")


def _module_to_rel(module: str, package: str,
                   files: frozenset[str]) -> str | None:
    """Dotted module name -> package-relative file, if it is ours."""
    if module != package and not module.startswith(package + "."):
        return None
    sub = module[len(package):].lstrip(".")
    candidate = (sub.replace(".", "/") + ".py") if sub else "__init__.py"
    if candidate in files:
        return candidate
    init = (sub.replace(".", "/") + "/__init__.py") if sub \
        else "__init__.py"
    if init in files:
        return init
    return None


class _ImportCollector(ast.NodeVisitor):
    """Collects resolved import edges for one module file."""

    def __init__(self, rel: str, module: str, package: str,
                 files: frozenset[str], lines: list[str]) -> None:
        self.rel = rel
        self.module = module
        self.package = package
        self.files = files
        self.lines = lines
        self.depth = 0  # function nesting
        self.edges: list[ImportEdge] = []

    # -- function nesting (lazy detection) ------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.depth += 1
        self.generic_visit(node)
        self.depth -= 1

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.depth += 1
        self.generic_visit(node)
        self.depth -= 1

    # -- edges -----------------------------------------------------------

    def _dispatch_tag(self, lineno: int) -> str | None:
        if 1 <= lineno <= len(self.lines):
            match = DISPATCH_RE.search(self.lines[lineno - 1])
            if match is not None:
                return match.group(1)
        return None

    def _add(self, node: ast.stmt, module: str, via_init: bool,
             symbol: str | None) -> None:
        dst = _module_to_rel(module, self.package, self.files)
        if dst is None:
            return
        resolved_via_init = via_init or (
            symbol is not None and dst.endswith("__init__.py"))
        self.edges.append(ImportEdge(
            src=self.rel, dst=dst, lineno=node.lineno,
            lazy=self.depth > 0, via_init=resolved_via_init,
            dispatch=self._dispatch_tag(node.lineno), symbol=symbol))

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._add(node, alias.name, via_init=False, symbol=None)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level:  # relative import: resolve against our package
            if self.rel.endswith("__init__.py"):
                pkg_parts = self.module.split(".")
            else:
                pkg_parts = self.module.split(".")[:-1]
            drop = node.level - 1
            if drop > len(pkg_parts):
                return  # escapes the package: not ours
            parts = pkg_parts if drop == 0 else pkg_parts[:-drop]
            base = ".".join(parts)
            if node.module:
                base = base + "." + node.module if base else node.module
        else:
            base = node.module or ""
        if not base:
            return
        for alias in node.names:
            submodule = base + "." + alias.name
            if _module_to_rel(submodule, self.package, self.files) is not None:
                # ``from pkg import module`` — a real module import
                self._add(node, submodule, via_init=False, symbol=None)
            else:
                # ``from mod import symbol`` — depends on ``mod`` itself
                self._add(node, base, via_init=False, symbol=alias.name)


def build_graph(root: str, package: str) -> ImportGraph:
    """Parse every module under ``root`` (the *package directory*) and
    build the import graph.  Nothing is imported or executed."""
    files = _module_files(root)
    file_set = frozenset(files)
    edges: list[ImportEdge] = []
    for rel in files:
        full = os.path.join(root, rel)
        with open(full, encoding="utf-8") as handle:
            source = handle.read()
        tree = ast.parse(source, filename=full)
        collector = _ImportCollector(
            rel, _rel_to_module(rel, package), package, file_set,
            source.splitlines())
        collector.visit(tree)
        edges.extend(collector.edges)
    return ImportGraph(root=root, package=package, files=files,
                       edges=tuple(edges))


def closure_files(root: str, package: str,
                  entries: tuple[str, ...]) -> tuple[str, ...]:
    """Sorted results-affecting closure from entry files — the file list
    hashed by ``REPRO_FINGERPRINT_MODE=graph`` (see
    :func:`repro.experiments.parallel.code_fingerprint`)."""
    graph = build_graph(root, package)
    missing = [rel for rel in entries if rel not in set(graph.files)]
    if missing:
        raise ValueError("unknown entry module(s): %s" % ", ".join(missing))
    return tuple(sorted(graph.closure(tuple(entries))))
