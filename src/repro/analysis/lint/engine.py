"""``repro lint`` orchestration: bind the five static-analysis passes
to the real ``repro`` package and render findings.

* fingerprint coverage auditor  (FP1xx codes — :mod:`.fingerprints`)
* determinism linter            (ND1xx codes — :mod:`.determinism`)
* policy-contract checker       (PC2xx codes — :mod:`.contracts`)
* async-safety pass             (AS3xx codes — :mod:`.asyncsafety`)
* mirror-coverage pass          (MC4xx codes — :mod:`.mirrors`)

The determinism scope is derived, not hand-picked: every file any
family's fingerprint hashes (closures plus explicit source entries) must
be deterministic, because those are exactly the files whose behaviour is
memoized by the result cache.  The service tier sits *outside* every
fingerprint closure (it orchestrates cached cells, it cannot change
their bytes), so its result-path files are added explicitly via
:data:`SERVICE_RESULT_PATH` — they decide *which* results are produced
and merged, and wall-clock-dependent control flow there is exactly as
suspect as in the core.

Also usable as a library (the self-check tests call :func:`run_repo_lint`
directly) and parameterizable over fixture trees via the pass modules.
"""

from __future__ import annotations

import json
import os
from typing import Callable

from repro.analysis.lint import (
    asyncsafety,
    contracts,
    determinism,
    fingerprints,
    mirrors,
)
from repro.analysis.lint.findings import RULES, Finding, rule_doc
from repro.analysis.lint.importgraph import ImportGraph, build_graph

__all__ = [
    "PASSES",
    "JSON_SCHEMA_VERSION",
    "explain",
    "explain_all",
    "filter_findings",
    "package_root",
    "render_json",
    "render_text",
    "repo_spec",
    "run_repo_lint",
]

#: Where the policy hook contract is declared.
BASE_POLICY_MODULE = "policies/base.py"
BASE_POLICY_CLASS = "ResourcePolicy"

#: The async-safety pass scans every module under this package prefix.
SERVICE_PREFIX = "service/"

#: Service-tier files on the *result path* — they choose, lease, merge
#: and persist sweep results, so they are held to the same determinism
#: bar as the fingerprinted core.  Deliberately excluded:
#: ``service/loadtest.py`` (wall-clock latency percentiles ARE its
#: output) and ``service/__init__.py`` (docstring only).
SERVICE_RESULT_PATH = (
    "service/chaos.py",
    "service/client.py",
    "service/httpd.py",
    "service/protocol.py",
    "service/server.py",
    "service/worker.py",
)

#: The batched SoA module and the scalar modules its mirrors shadow.
MIRROR_MODULE = "pipeline/batched.py"
MIRROR_SCALAR_SOURCES = ("pipeline/processor.py", "pipeline/resources.py",
                         "pipeline/fastpath.py")

#: Version of the ``--format json`` payload shape.  Bump on any
#: breaking change to the top-level keys or the finding dict.
JSON_SCHEMA_VERSION = 1


def package_root() -> str:
    import repro

    return os.path.dirname(os.path.abspath(repro.__file__))


def repo_spec() -> fingerprints.FingerprintSpec:
    """The live fingerprint configuration from the sweep engine."""
    from repro.experiments import parallel

    return fingerprints.FingerprintSpec(
        core_entries=tuple(parallel._CORE_ENTRIES),
        core_sources=tuple(parallel._CORE_SOURCES),
        family_entries={family: tuple(entries) for family, entries
                        in parallel._FAMILY_ENTRIES.items()},
        family_sources={family: tuple(sources) for family, sources
                        in parallel._POLICY_SOURCES.items()},
    )


def determinism_scope(graph: ImportGraph,
                      spec: fingerprints.FingerprintSpec) -> tuple[str, ...]:
    """Every file whose content is hashed into some cache key, plus the
    service tier's result-path files (:data:`SERVICE_RESULT_PATH`)."""
    scope: set[str] = set()
    file_set = set(graph.files)
    for family, entries in spec.family_entries.items():
        roots = spec.core_entries + entries
        if all(rel in file_set for rel in roots):
            scope.update(graph.closure(roots))
    for entry in spec.core_sources + tuple(
            rel for sources in spec.family_sources.values()
            for rel in sources):
        if entry in file_set:
            scope.add(entry)
        else:
            prefix = entry.rstrip("/") + "/"
            scope.update(rel for rel in graph.files
                         if rel.startswith(prefix))
    scope.update(rel for rel in SERVICE_RESULT_PATH if rel in file_set)
    return tuple(sorted(scope))


def _fingerprint_pass(root: str, graph: ImportGraph) -> list[Finding]:
    return fingerprints.audit_fingerprints(graph, repo_spec())


def _determinism_pass(root: str, graph: ImportGraph) -> list[Finding]:
    return determinism.scan_tree(root, determinism_scope(graph, repo_spec()))


def _contract_pass(root: str, graph: ImportGraph) -> list[Finding]:
    return contracts.check_tree(root, graph.files, BASE_POLICY_MODULE,
                                BASE_POLICY_CLASS)


def _async_pass(root: str, graph: ImportGraph) -> list[Finding]:
    rels = tuple(rel for rel in graph.files
                 if rel.startswith(SERVICE_PREFIX))
    return asyncsafety.scan_tree(root, rels)


def _mirror_pass(root: str, graph: ImportGraph) -> list[Finding]:
    if MIRROR_MODULE not in graph.files:
        return []
    return mirrors.check_module(root, MIRROR_MODULE, MIRROR_SCALAR_SOURCES)


PASSES: dict[str, Callable[[str, ImportGraph], list[Finding]]] = {
    "fingerprints": _fingerprint_pass,
    "determinism": _determinism_pass,
    "contracts": _contract_pass,
    "async": _async_pass,
    "mirrors": _mirror_pass,
}


def filter_findings(findings: list[Finding],
                    select: tuple[str, ...] = (),
                    ignore: tuple[str, ...] = ()) -> list[Finding]:
    """Keep findings whose code starts with a ``select`` prefix (all, if
    empty) and no ``ignore`` prefix.  ``FP``/``ND1``/``PC203`` all work."""
    kept = []
    for finding in findings:
        if select and not any(finding.rule.startswith(prefix)
                              for prefix in select):
            continue
        if any(finding.rule.startswith(prefix) for prefix in ignore):
            continue
        kept.append(finding)
    return kept


def run_repo_lint(select: tuple[str, ...] = (),
                  ignore: tuple[str, ...] = (),
                  root: str | None = None) -> list[Finding]:
    """All five passes over the installed ``repro`` package."""
    root = root if root is not None else package_root()
    graph = build_graph(root, "repro")
    findings: list[Finding] = []
    for runner in PASSES.values():
        findings.extend(runner(root, graph))
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return filter_findings(findings, select, ignore)


def render_text(findings: list[Finding]) -> str:
    if not findings:
        return "repro lint: clean (%d rules, passes: %s)" % (
            len(RULES), ", ".join(PASSES))
    lines = [finding.render() for finding in findings]
    errors = sum(1 for f in findings if f.severity == "error")
    warnings = len(findings) - errors
    lines.append("repro lint: %d finding(s) (%d error(s), %d warning(s))"
                 % (len(findings), errors, warnings))
    return "\n".join(lines)


def render_json(findings: list[Finding]) -> str:
    """Schema-versioned JSON payload with a stable finding order.

    Findings are re-sorted by (path, line, rule, message) here — not
    trusted from the caller — so CI diffs and downstream tooling see a
    deterministic order no matter which pass emitted what first.
    """
    ordered = sorted(findings,
                     key=lambda f: (f.path, f.line, f.rule, f.message))
    return json.dumps({
        "schema_version": JSON_SCHEMA_VERSION,
        "clean": not ordered,
        "findings": [finding.to_dict() for finding in ordered],
    }, indent=1, sort_keys=True) + "\n"


def explain(code: str) -> str:
    """``--explain`` text for a rule code (KeyError when unknown)."""
    return rule_doc(code)


def explain_all() -> str:
    """``--explain all``: one line per rule in the whole catalogue."""
    lines = ["%d rules in %d passes (%s):"
             % (len(RULES), len(PASSES), ", ".join(PASSES))]
    for code in sorted(RULES):
        rule = RULES[code]
        lines.append("  %s %-32s %s" % (rule.code, rule.name, rule.summary))
    return "\n".join(lines)
