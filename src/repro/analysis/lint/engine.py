"""``repro lint`` orchestration: bind the three static-analysis passes
to the real ``repro`` package and render findings.

* fingerprint coverage auditor  (FP1xx codes — :mod:`.fingerprints`)
* determinism linter            (ND1xx codes — :mod:`.determinism`)
* policy-contract checker       (PC2xx codes — :mod:`.contracts`)

The determinism scope is derived, not hand-picked: every file any
family's fingerprint hashes (closures plus explicit source entries) must
be deterministic, because those are exactly the files whose behaviour is
memoized by the result cache.

Also usable as a library (the self-check tests call :func:`run_repo_lint`
directly) and parameterizable over fixture trees via the pass modules.
"""

from __future__ import annotations

import json
import os
from typing import Callable

from repro.analysis.lint import contracts, determinism, fingerprints
from repro.analysis.lint.findings import RULES, Finding, rule_doc
from repro.analysis.lint.importgraph import ImportGraph, build_graph

__all__ = [
    "PASSES",
    "explain",
    "filter_findings",
    "package_root",
    "render_json",
    "render_text",
    "repo_spec",
    "run_repo_lint",
]

#: Where the policy hook contract is declared.
BASE_POLICY_MODULE = "policies/base.py"
BASE_POLICY_CLASS = "ResourcePolicy"


def package_root() -> str:
    import repro

    return os.path.dirname(os.path.abspath(repro.__file__))


def repo_spec() -> fingerprints.FingerprintSpec:
    """The live fingerprint configuration from the sweep engine."""
    from repro.experiments import parallel

    return fingerprints.FingerprintSpec(
        core_entries=tuple(parallel._CORE_ENTRIES),
        core_sources=tuple(parallel._CORE_SOURCES),
        family_entries={family: tuple(entries) for family, entries
                        in parallel._FAMILY_ENTRIES.items()},
        family_sources={family: tuple(sources) for family, sources
                        in parallel._POLICY_SOURCES.items()},
    )


def determinism_scope(graph: ImportGraph,
                      spec: fingerprints.FingerprintSpec) -> tuple[str, ...]:
    """Every file whose content is hashed into some cache key."""
    scope: set[str] = set()
    file_set = set(graph.files)
    for family, entries in spec.family_entries.items():
        roots = spec.core_entries + entries
        if all(rel in file_set for rel in roots):
            scope.update(graph.closure(roots))
    for entry in spec.core_sources + tuple(
            rel for sources in spec.family_sources.values()
            for rel in sources):
        if entry in file_set:
            scope.add(entry)
        else:
            prefix = entry.rstrip("/") + "/"
            scope.update(rel for rel in graph.files
                         if rel.startswith(prefix))
    return tuple(sorted(scope))


def _fingerprint_pass(root: str, graph: ImportGraph) -> list[Finding]:
    return fingerprints.audit_fingerprints(graph, repo_spec())


def _determinism_pass(root: str, graph: ImportGraph) -> list[Finding]:
    return determinism.scan_tree(root, determinism_scope(graph, repo_spec()))


def _contract_pass(root: str, graph: ImportGraph) -> list[Finding]:
    return contracts.check_tree(root, graph.files, BASE_POLICY_MODULE,
                                BASE_POLICY_CLASS)


PASSES: dict[str, Callable[[str, ImportGraph], list[Finding]]] = {
    "fingerprints": _fingerprint_pass,
    "determinism": _determinism_pass,
    "contracts": _contract_pass,
}


def filter_findings(findings: list[Finding],
                    select: tuple[str, ...] = (),
                    ignore: tuple[str, ...] = ()) -> list[Finding]:
    """Keep findings whose code starts with a ``select`` prefix (all, if
    empty) and no ``ignore`` prefix.  ``FP``/``ND1``/``PC203`` all work."""
    kept = []
    for finding in findings:
        if select and not any(finding.rule.startswith(prefix)
                              for prefix in select):
            continue
        if any(finding.rule.startswith(prefix) for prefix in ignore):
            continue
        kept.append(finding)
    return kept


def run_repo_lint(select: tuple[str, ...] = (),
                  ignore: tuple[str, ...] = (),
                  root: str | None = None) -> list[Finding]:
    """All three passes over the installed ``repro`` package."""
    root = root if root is not None else package_root()
    graph = build_graph(root, "repro")
    findings: list[Finding] = []
    for runner in PASSES.values():
        findings.extend(runner(root, graph))
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return filter_findings(findings, select, ignore)


def render_text(findings: list[Finding]) -> str:
    if not findings:
        return "repro lint: clean (%d rules, passes: %s)" % (
            len(RULES), ", ".join(PASSES))
    lines = [finding.render() for finding in findings]
    errors = sum(1 for f in findings if f.severity == "error")
    warnings = len(findings) - errors
    lines.append("repro lint: %d finding(s) (%d error(s), %d warning(s))"
                 % (len(findings), errors, warnings))
    return "\n".join(lines)


def render_json(findings: list[Finding]) -> str:
    return json.dumps({
        "clean": not findings,
        "findings": [finding.to_dict() for finding in findings],
    }, indent=1, sort_keys=True) + "\n"


def explain(code: str) -> str:
    """``--explain`` text for a rule code (KeyError when unknown)."""
    return rule_doc(code)
