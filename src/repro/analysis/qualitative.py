"""The Section 3.3.2 qualitative analysis, made measurable.

The paper identifies two behaviours where indicator-driven policies miss
performance that learning captures:

* **Cache-miss clustering** — when a thread's independent L2-missing loads
  cluster, giving it a *larger* partition lets more of the cluster into
  the window and overlaps the misses (memory-level parallelism).
  :func:`miss_clustering_gain` measures exactly this: a thread's
  stand-alone IPC with a deep vs shallow window, normalized.
* **Compute-intensive low-ILP threads** — threads that rarely cache-miss
  but still can't use a big window (long dependence chains, poor branch
  prediction).  Indicator policies over-provision them;
  :func:`window_utility` exposes them as threads whose IPC barely improves
  with window size despite a low L2 miss rate.
"""

from dataclasses import dataclass

from repro.pipeline.processor import SMTProcessor
from repro.policies.icount import ICountPolicy


@dataclass(frozen=True)
class WindowUtility:
    """How much a thread's stand-alone IPC responds to window size."""

    benchmark: str
    shallow_ipc: float
    deep_ipc: float
    l2_misses_per_kilo: float

    @property
    def gain(self):
        """deep/shallow IPC ratio; ~1.0 means window-insensitive."""
        if self.shallow_ipc <= 0:
            return 1.0
        return self.deep_ipc / self.shallow_ipc

    @property
    def is_memory_intensive(self):
        return self.l2_misses_per_kilo >= 5.0

    @property
    def is_low_ilp_compute(self):
        """The paper's second case: few misses *and* little window gain."""
        return not self.is_memory_intensive and self.gain < 1.25


def _capped_run(profile, config, cap, seed, warmup, window):
    proc = SMTProcessor(config, [profile], seed=seed, policy=ICountPolicy())
    proc.partitions.set_limits_directly(
        int_rename=[cap],
        int_iq=[max(2, cap * config.iq_int_size // config.rename_int)],
        rob=[max(2, cap * config.rob_size // config.rename_int)],
    )
    proc.run(warmup)
    before = proc.stats.copy()
    proc.run(window)
    committed, cycles = proc.stats.delta_since(before)
    misses = proc.stats.l2_misses[0]
    return committed[0] / max(cycles, 1), misses, committed[0]


def window_utility(profile, config, seed=0, warmup=8000, window=16000,
                   shallow_frac=0.25):
    """Measure a thread's IPC with a shallow vs full window."""
    shallow_cap = max(config.min_partition,
                      int(config.rename_int * shallow_frac))
    shallow_ipc, __, __ = _capped_run(profile, config, shallow_cap, seed,
                                      warmup, window)
    deep_ipc, misses, committed = _capped_run(
        profile, config, config.rename_int, seed, warmup, window)
    mpki = 1000.0 * misses / max(1, committed)
    return WindowUtility(
        benchmark=profile.name,
        shallow_ipc=shallow_ipc,
        deep_ipc=deep_ipc,
        l2_misses_per_kilo=mpki,
    )


def miss_clustering_gain(profile, config, seed=0, warmup=8000, window=16000):
    """Deep-window speedup of a memory-intensive thread — the measurable
    form of "aggressively fetching past a cache miss is desirable when
    independent cache-missing loads can be brought into the window"."""
    utility = window_utility(profile, config, seed=seed, warmup=warmup,
                             window=window)
    return utility.gain


def classify_threads(profiles, config, seed=0, warmup=8000, window=16000):
    """Classify each profile into the paper's qualitative cases.

    Returns {"clustering": [...], "low_ilp_compute": [...], "other": [...]}
    with the per-benchmark :class:`WindowUtility` records attached.
    """
    buckets = {"clustering": [], "low_ilp_compute": [], "other": []}
    for profile in profiles:
        utility = window_utility(profile, config, seed=seed, warmup=warmup,
                                 window=window)
        if utility.is_memory_intensive and utility.gain >= 1.25:
            buckets["clustering"].append(utility)
        elif utility.is_low_ilp_compute:
            buckets["low_ilp_compute"].append(utility)
        else:
            buckets["other"].append(utility)
    return buckets
