"""Per-application characteristics (Section 4.4.2, Tables 2/3 columns).

* ``resource_requirement`` — the "Rsc" column: run the benchmark
  stand-alone while capping its partition, and report the smallest cap
  achieving 95% of its unrestricted IPC.
* ``requirement_series`` / ``derive_freq_label`` — the "Freq" column:
  re-derive the requirement per epoch window and classify its variation as
  No / Low / High frequency.
* ``workload_label`` — the Figure 11 row labels: SM (the workload fits the
  machine) or LG(H/L) (it does not, with the variation frequency of its
  members).
"""

from repro.pipeline.config import SMTConfig
from repro.pipeline.processor import SMTProcessor
from repro.policies.icount import ICountPolicy

#: Fraction of unrestricted IPC the "Rsc" cap must reach (the paper's 95%).
REQUIREMENT_LEVEL = 0.95
#: Requirement changes by more than this fraction of the pool to count as a
#: variation event.  A quarter of the pool: the measured per-epoch
#: requirement jitters by a grid step or two from IPC noise alone, and only
#: phase changes move it by a large fraction.
VARIATION_FRACTION = 1.0 / 4.0
#: Change-rate thresholds for the High / Low labels: High means a large
#: change every epoch or two; a single persistent regime change in a dozen
#: epochs already counts as Low.
HIGH_RATE = 0.4
LOW_RATE = 0.08


def _solo_processor(profile, config, seed, phase_period=None):
    return SMTProcessor(config, [profile], seed=seed, policy=ICountPolicy(),
                        phase_period=phase_period)


def _capped_ipc(profile, config, cap, seed, warmup, window, phase_period=None):
    proc = _solo_processor(profile, config, seed, phase_period)
    proc.partitions.set_limits_directly(
        int_rename=[cap],
        int_iq=[max(1, cap * config.iq_int_size // config.rename_int)],
        rob=[max(1, cap * config.rob_size // config.rename_int)],
    )
    proc.run(warmup)
    before = proc.stats.copy()
    proc.run(window)
    committed, cycles = proc.stats.delta_since(before)
    return committed[0] / max(cycles, 1)


def resource_requirement(profile, config=None, seed=0, warmup=20000,
                         window=20000, step=None):
    """Integer rename registers needed for 95% of stand-alone IPC.

    Measures IPC at every cap on the grid and smooths the curve with a
    running maximum (the true IPC-vs-cap curve is non-decreasing, so any
    dip is measurement noise) before locating the 95% point — a first-dip
    early exit would return arbitrary values for noisy memory-bound
    curves.
    """
    config = config or SMTConfig.fast()
    step = step or max(4, config.rename_int // 16)
    caps = list(range(config.min_partition, config.rename_int, step))
    caps.append(config.rename_int)
    measured = [
        _capped_ipc(profile, config, cap, seed, warmup, window)
        for cap in caps
    ]
    smoothed = []
    running = 0.0
    for value in measured:
        running = max(running, value)
        smoothed.append(running)
    full = smoothed[-1]
    if full <= 0.0:
        return config.rename_int
    for cap, value in zip(caps, smoothed):
        if value >= REQUIREMENT_LEVEL * full:
            return cap
    return config.rename_int


def requirement_series(profile, config=None, seed=0, warmup=4000,
                       window=4000, epochs=12, step=None, phase_period=None,
                       level=None):
    """Per-epoch resource requirement, for variation-frequency analysis.

    Windows are measured in *committed instructions*, not cycles: the
    stream's phases toggle at instruction counts, and capped (slower) runs
    would drift out of phase against the full-cap reference if windows
    were cycle-sized.  Every cap's run is sliced at the same instruction
    boundaries, so epoch ``i`` compares the same program region across
    caps.  ``warmup`` and ``window`` are therefore instruction counts
    here.

    ``level`` defaults to :data:`REQUIREMENT_LEVEL`; variation analysis
    typically passes a slightly laxer level (0.90) because the 95% cap
    sits on the shallow part of memory-bound IPC curves where per-epoch
    noise flips it between grid steps.
    """
    level = REQUIREMENT_LEVEL if level is None else level
    config = config or SMTConfig.fast()
    step = step or max(4, config.rename_int // 8)
    phase_period = phase_period or window  # one phase per window
    caps = list(range(config.min_partition, config.rename_int + 1, step))
    if caps[-1] != config.rename_int:
        caps.append(config.rename_int)

    def run_until_committed(proc, target, chunk=256):
        while proc.stats.committed[0] < target:
            proc.run(chunk)

    per_cap_series = {}
    for cap in caps:
        proc = _solo_processor(profile, config, seed, phase_period)
        proc.partitions.set_limits_directly(
            int_rename=[cap],
            int_iq=[max(1, cap * config.iq_int_size // config.rename_int)],
            rob=[max(1, cap * config.rob_size // config.rename_int)],
        )
        run_until_committed(proc, warmup)
        series = []
        for epoch in range(epochs):
            start_cycles = proc.stats.cycles
            start_committed = proc.stats.committed[0]
            run_until_committed(proc, warmup + (epoch + 1) * window)
            cycles = proc.stats.cycles - start_cycles
            committed = proc.stats.committed[0] - start_committed
            series.append(committed / max(cycles, 1))
        per_cap_series[cap] = series
    requirements = []
    for epoch in range(epochs):
        full = per_cap_series[config.rename_int][epoch]
        requirement = config.rename_int
        if full > 0.0:
            for cap in sorted(caps):
                if per_cap_series[cap][epoch] >= level * full:
                    requirement = cap
                    break
        requirements.append(requirement)
    return requirements


def derive_freq_label(requirements, total, threshold=None):
    """Classify a requirement series as "No" / "Low" / "High" variation.

    High: a significant change every epoch or two; Low: occasional changes;
    No: essentially constant (the Table 2 "Freq" column).  ``threshold``
    (registers) separates real requirement moves from grid jitter; it
    defaults to ``VARIATION_FRACTION * total`` and is typically set to
    ~1.5 measurement grid steps by callers that know the grid.
    """
    if len(requirements) < 2:
        raise ValueError("need at least two epochs")
    if threshold is None:
        threshold = VARIATION_FRACTION * total
    changes = sum(
        1 for before, after in zip(requirements, requirements[1:])
        if abs(after - before) > threshold
    )
    rate = changes / (len(requirements) - 1)
    if rate >= HIGH_RATE:
        return "High"
    if rate >= LOW_RATE:
        return "Low"
    return "No"


def workload_label(workload, total=None, measured_rsc=None):
    """The Figure 11 label: "SM", "LG(H)", "LG(L)" or "LG(LH)".

    Parameters
    ----------
    workload:
        A :class:`~repro.workloads.mixes.Workload`.
    total:
        Machine threshold (defaults to the paper's: 256 for 2 threads,
        440 for 4 — scaled to the hint units).
    measured_rsc:
        Optional dict benchmark-name -> measured requirement; falls back to
        the Table 2 hints.
    """
    if total is None:
        total = 256 if workload.num_threads == 2 else 440
    if measured_rsc is None:
        rsc_sum = workload.rsc_sum
    else:
        rsc_sum = sum(measured_rsc[name] for name in workload.benchmarks)
    if rsc_sum <= total:
        return "SM"
    freqs = {profile.freq.value for profile in workload.profiles}
    has_high = "High" in freqs
    has_low = "Low" in freqs
    if has_high and has_low:
        return "LG(LH)"
    if has_high:
        return "LG(H)"
    if has_low:
        return "LG(L)"
    return "LG"
