"""The Figure 2 experiment: IPC as a function of the resource distribution
across three simultaneous threads.

The paper plots the IPC of mesa/vortex/fma3d over a 32K-cycle interval as
the fraction of resources given to each thread varies, showing the
hill-shaped sensitivity that motivates hill-climbing.  This module sweeps
a (share0, share1) grid — share2 takes the remainder — replaying the same
interval from a checkpoint for every grid point.
"""

from dataclasses import dataclass

from repro.pipeline.checkpoint import Checkpoint


@dataclass
class DistributionSurface:
    """The swept surface plus its peak."""

    share_axis: list      # grid values used for share0 and share1
    #: ipc[(share0, share1)] -> aggregate IPC (only feasible points).
    ipc: dict
    peak_shares: tuple    # (share0, share1, share2) at max IPC
    peak_ipc: float

    def rows(self):
        """Matrix view: list of (share0, [(share1, ipc) ...]) rows."""
        rows = []
        for share0 in self.share_axis:
            row = [
                (share1, self.ipc[(share0, share1)])
                for share1 in self.share_axis
                if (share0, share1) in self.ipc
            ]
            if row:
                rows.append((share0, row))
        return rows


def distribution_surface(proc, interval, step=None):
    """Sweep the 3-thread distribution space from the machine's current
    state.

    Parameters
    ----------
    proc:
        A 3-context :class:`~repro.pipeline.processor.SMTProcessor` (warm);
        its state is not modified.
    interval:
        Cycles to replay per grid point (the paper uses 32K).
    step:
        Grid step in integer rename registers.
    """
    if proc.num_threads != 3:
        raise ValueError("Figure 2 surface needs exactly 3 threads")
    config = proc.config
    total = config.rename_int
    minimum = config.min_partition
    step = step or max(4, total // 16)
    checkpoint = Checkpoint(proc)
    axis = list(range(minimum, total - 2 * minimum + 1, step))
    ipc = {}
    peak = None
    for share0 in axis:
        for share1 in axis:
            share2 = total - share0 - share1
            if share2 < minimum:
                continue
            trial = checkpoint.materialize()
            trial.partitions.set_shares([share0, share1, share2])
            before = trial.stats.copy()
            trial.run(interval)
            committed, cycles = trial.stats.delta_since(before)
            value = sum(committed) / max(cycles, 1)
            ipc[(share0, share1)] = value
            if peak is None or value > peak[1]:
                peak = ((share0, share1, share2), value)
    return DistributionSurface(
        share_axis=axis,
        ipc=ipc,
        peak_shares=peak[0],
        peak_ipc=peak[1],
    )
