"""Hill-width analysis (Section 3.3.1, Figures 6 and 7).

``hill-width_N`` is the width of the performance hill containing the
maximal peak, measured at performance level ``N * max``: sharp peaks have
small widths at high N (the workload is sensitive to partitioning), dull
peaks have large widths (any nearby partitioning performs fine).
"""


def _validated(curve):
    if len(curve) < 2:
        raise ValueError("curve needs at least two points")
    points = sorted(curve)
    positions = [position for position, __ in points]
    if len(set(positions)) != len(positions):
        raise ValueError("curve has duplicate positions")
    return points


def hill_width(curve, level):
    """Width of the maximal peak's hill at ``level`` (0 < level <= 1).

    ``curve`` is a list of (partition position, performance) pairs.  The
    width is the extent, in partition units, of the contiguous region
    around the argmax whose performance stays at or above
    ``level * max(performance)``.
    """
    if not 0.0 < level <= 1.0:
        raise ValueError("level must be in (0, 1]")
    points = _validated(curve)
    values = [value for __, value in points]
    peak_value = max(values)
    peak_index = values.index(peak_value)
    threshold = level * peak_value
    left = peak_index
    while left > 0 and values[left - 1] >= threshold:
        left -= 1
    right = peak_index
    while right < len(values) - 1 and values[right + 1] >= threshold:
        right += 1
    return points[right][0] - points[left][0]


def hill_widths(curve, levels=(0.99, 0.98, 0.97, 0.95, 0.90)):
    """Hill-width at each level (the Figure 7 measurement set)."""
    return {level: hill_width(curve, level) for level in levels}


def peak_count(curve, prominence=0.02):
    """Number of local maxima whose prominence exceeds ``prominence``
    (relative to the global max).  Used to detect the multi-peak curves
    behind the spatially-limited (SL) behaviour.
    """
    points = _validated(curve)
    values = [value for __, value in points]
    peak_value = max(values)
    if peak_value <= 0:
        return 0
    threshold = prominence * peak_value
    peaks = 0
    count = len(values)
    for index in range(count):
        value = values[index]
        left = values[index - 1] if index > 0 else float("-inf")
        right = values[index + 1] if index < count - 1 else float("-inf")
        if value < max(left, right):
            continue  # not a local max
        # Prominence: drop required on both sides before rising again.
        drop_left = _max_drop(values, index, -1, threshold)
        drop_right = _max_drop(values, index, +1, threshold)
        boundary_left = index == 0
        boundary_right = index == count - 1
        if (drop_left or boundary_left) and (drop_right or boundary_right):
            peaks += 1
    return peaks


def _max_drop(values, start, step, threshold):
    """True if walking from ``start`` in ``step`` direction the curve drops
    by at least ``threshold`` before exceeding values[start]."""
    reference = values[start]
    index = start + step
    while 0 <= index < len(values):
        if values[index] > reference:
            return False
        if reference - values[index] >= threshold:
            return True
        index += step
    return False
