"""Run-length-encoded Markov phase predictor (Sherwood et al., ISCA '03).

State is the pair (current phase ID, length of the current run of that
phase).  The table maps each observed state to the phase that followed it
last time; prediction is a table lookup, defaulting to "same phase again"
(the best static guess) on a miss.  The table holds 2048 entries in the
paper's configuration, managed LRU.
"""


class RLEMarkovPredictor:
    """(phase, run-length) -> next-phase predictor."""

    def __init__(self, entries=2048, max_run_length=64):
        if entries <= 0:
            raise ValueError("entries must be positive")
        self.entries = entries
        self.max_run_length = max_run_length
        self._table = {}     # (phase, run_length) -> next phase
        self._last_use = {}
        self._stamp = 0
        self._current_phase = None
        self._run_length = 0
        self._last_prediction = None
        self.lookups = 0
        self.correct = 0

    def _key(self, phase, run_length):
        return (phase, min(run_length, self.max_run_length))

    def predict_next(self):
        """Predict the next epoch's phase from the current state."""
        if self._current_phase is None:
            return None
        self.lookups += 1
        key = self._key(self._current_phase, self._run_length)
        prediction = self._table.get(key, self._current_phase)
        self._last_prediction = prediction
        return prediction

    def observe(self, phase):
        """Feed the actual phase of the epoch that just completed."""
        self._stamp += 1
        if self._current_phase is None:
            self._current_phase = phase
            self._run_length = 1
            return
        if self._last_prediction is not None and self._last_prediction == phase:
            self.correct += 1
        if phase != self._current_phase:
            # The run just ended: remember what followed this state.
            key = self._key(self._current_phase, self._run_length)
            if key not in self._table and len(self._table) >= self.entries:
                victim = min(self._last_use, key=self._last_use.get)
                del self._table[victim]
                del self._last_use[victim]
            self._table[key] = phase
            self._last_use[key] = self._stamp
            self._current_phase = phase
            self._run_length = 1
        else:
            self._run_length += 1

    @property
    def accuracy(self):
        if self.lookups == 0:
            return 0.0
        return self.correct / self.lookups
