"""Phase classification: map epoch signatures to stable phase IDs.

An incoming signature is compared against the stored representative of
every known phase; if the closest match is within ``threshold`` (Manhattan
distance over normalized vectors) the signature joins that phase, else a
new phase ID is allocated.  The default threshold (1.0) sits between the
multinomial sampling noise of same-phase epochs (~0.3-0.6 at a few hundred
control-flow commits per epoch) and the distance between genuinely
different phases, which execute different code (~2.0 for disjoint branch
footprints).  The table holds up to ``capacity`` phases
(128 in the paper) with LRU replacement.
"""

from repro.phase.bbv import signature_distance


class PhaseTable:
    """Signature -> phase-ID classifier with bounded capacity."""

    def __init__(self, capacity=128, threshold=1.0):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.threshold = threshold
        self._phases = {}  # phase_id -> representative signature
        self._last_use = {}
        self._next_id = 0
        self._stamp = 0

    def __len__(self):
        return len(self._phases)

    def classify(self, signature):
        """Return the phase ID for ``signature`` (allocating if novel)."""
        self._stamp += 1
        best_id = None
        best_distance = None
        for phase_id, representative in self._phases.items():
            distance = signature_distance(signature, representative)
            if best_distance is None or distance < best_distance:
                best_distance = distance
                best_id = phase_id
        if best_id is not None and best_distance <= self.threshold:
            self._last_use[best_id] = self._stamp
            return best_id
        if len(self._phases) >= self.capacity:
            victim = min(self._last_use, key=self._last_use.get)
            del self._phases[victim]
            del self._last_use[victim]
        phase_id = self._next_id
        self._next_id += 1
        self._phases[phase_id] = tuple(signature)
        self._last_use[phase_id] = self._stamp
        return phase_id
