"""Phase detection and prediction substrate (Section 5).

* :class:`~repro.phase.bbv.BBVCollector` — per-context basic-block-vector
  signatures (64 buckets per SMT context, as in the paper), collected from
  committed control-flow instructions.
* :class:`~repro.phase.detector.PhaseTable` — classifies epoch signatures
  into up to 128 unique phase IDs (Sherwood-style signature matching).
* :class:`~repro.phase.predictor.RLEMarkovPredictor` — a run-length-encoded
  Markov predictor (2048 entries) for the next epoch's phase ID.
"""

from repro.phase.bbv import BBVCollector, signature_distance
from repro.phase.detector import PhaseTable
from repro.phase.predictor import RLEMarkovPredictor

__all__ = [
    "BBVCollector",
    "signature_distance",
    "PhaseTable",
    "RLEMarkovPredictor",
]
