"""Basic Block Vector signatures (Sherwood et al.), adapted to the SMT
setting: one 64-bucket vector per hardware context, concatenated into a
single epoch signature.

The processor reports each committed control-flow instruction's PC; the
PC identifies the basic block that ended there, which is hashed into a
bucket.  At the end of an epoch :meth:`harvest` returns the normalized
signature and clears the accumulators for the next epoch.
"""


def signature_distance(left, right):
    """Manhattan distance between two normalized signatures (0..2)."""
    if len(left) != len(right):
        raise ValueError("signature lengths differ: %d vs %d" % (len(left), len(right)))
    return sum(abs(a - b) for a, b in zip(left, right))


class BBVCollector:
    """Accumulates per-context BBV counts during an epoch."""

    def __init__(self, num_threads, buckets=64):
        if buckets <= 0:
            raise ValueError("buckets must be positive")
        self.num_threads = num_threads
        self.buckets = buckets
        self._counts = [[0] * buckets for __ in range(num_threads)]

    def note(self, tid, pc):
        """Record one committed control-flow instruction (called by the
        processor's commit stage)."""
        self._counts[tid][(pc >> 2) % self.buckets] += 1

    def harvest(self):
        """Return the concatenated normalized signature and reset.

        Each context's vector is normalized independently so a slow thread
        still contributes equally to phase identity.
        """
        signature = []
        for counts in self._counts:
            total = sum(counts)
            if total == 0:
                signature.extend(0.0 for __ in counts)
            else:
                signature.extend(count / total for count in counts)
        self._counts = [[0] * self.buckets for __ in range(self.num_threads)]
        return tuple(signature)
