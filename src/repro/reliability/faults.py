"""Composable fault injection for the learning loop.

The paper's contribution is a feedback loop — partition, measure IPC,
climb — and a credible reproduction should show how that loop behaves when
the feedback is noisy or the plant misbehaves (cf. learning-based
allocation work that stresses tolerance to faulty feedback).  This module
perturbs exactly the quantities the loop depends on:

* :class:`MemoryLatencySpike` — bursty main-memory latency (a noisy
  memory system shifts every thread's IPC between epochs).
* :class:`TransientFetchStall` — a random thread loses its front end for
  a while (transient fetch starvation).
* :class:`RNGDesync` — a workload stream's RNG is advanced out of band at
  an epoch boundary, desynchronizing the instruction stream from any
  twin/replay run (models external nondeterminism).
* :class:`PartitionScramble` — raw corruption of the partition registers
  (the bit-flip / buggy-firmware model).
* :class:`MisbehavingPolicy` — a policy wrapper that emits out-of-range,
  non-conserving, or structurally malformed partitions after delegating
  to the real policy.  The controller is expected to clamp and
  re-normalize (``sanitize_partitions=True``) instead of crashing.

Faults attach at epoch boundaries through a :class:`FaultInjector` passed
to the :class:`~repro.core.controller.EpochController`; every injection is
recorded as a :class:`FaultEvent` so a run can report exactly what it
survived.  All faults mutate only state that lives *inside* the processor
(and is therefore captured by checkpoints); the injector itself stays
outside, so a retry from a checkpoint does not mechanically replay the
same external misfortune.
"""

import random
from dataclasses import dataclass

from repro.policies.base import ResourcePolicy


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault occurrence."""

    epoch_id: int
    fault: str
    description: str


class Fault:
    """Base class: one fault model, invoked before every epoch."""

    name = "fault"

    def before_epoch(self, proc, epoch_id, rng):
        """Perturb ``proc``; return a description string when a fault was
        actually injected this epoch, else ``None``."""
        return None


class MemoryLatencySpike(Fault):
    """Bursty main-memory latency: with probability ``burst_probability``
    per epoch, memory latency rises by ``extra_latency`` cycles for
    ``burst_epochs`` consecutive epochs."""

    name = "mem-latency-spike"

    def __init__(self, extra_latency=200, burst_probability=0.25,
                 burst_epochs=2):
        self.extra_latency = extra_latency
        self.burst_probability = burst_probability
        self.burst_epochs = burst_epochs
        self._remaining = 0
        self._base_latency = None

    def before_epoch(self, proc, epoch_id, rng):
        hierarchy = proc.hierarchy
        if self._base_latency is None:
            self._base_latency = hierarchy.mem_latency
        if self._remaining > 0:
            self._remaining -= 1
            if self._remaining == 0:
                hierarchy.mem_latency = self._base_latency
                return None
            return "memory latency held at %d (+%d), %d epochs left" % (
                hierarchy.mem_latency, self.extra_latency, self._remaining)
        if rng.random() < self.burst_probability:
            hierarchy.mem_latency = self._base_latency + self.extra_latency
            self._remaining = self.burst_epochs
            return "memory latency spiked %d -> %d for %d epochs" % (
                self._base_latency, hierarchy.mem_latency, self.burst_epochs)
        hierarchy.mem_latency = self._base_latency
        return None


class TransientFetchStall(Fault):
    """A random thread's fetch blocks for ``stall_cycles`` at the epoch
    boundary (transient front-end loss: e.g. an ITLB shootdown)."""

    name = "transient-fetch-stall"

    def __init__(self, stall_cycles=500, probability=0.5):
        self.stall_cycles = stall_cycles
        self.probability = probability

    def before_epoch(self, proc, epoch_id, rng):
        if rng.random() >= self.probability:
            return None
        tid = rng.randrange(proc.num_threads)
        thread = proc.threads[tid]
        blocked_until = proc.cycle + self.stall_cycles
        thread.fetch_blocked_until = max(thread.fetch_blocked_until,
                                         blocked_until)
        return "thread %d fetch stalled for %d cycles" % (
            tid, self.stall_cycles)


class RNGDesync(Fault):
    """Advance one workload stream's RNG out of band, desynchronizing the
    instruction stream from any deterministic twin of this run."""

    name = "rng-desync"

    def __init__(self, probability=0.5, max_draws=7):
        self.probability = probability
        self.max_draws = max_draws

    def before_epoch(self, proc, epoch_id, rng):
        if rng.random() >= self.probability:
            return None
        tid = rng.randrange(proc.num_threads)
        draws = 1 + rng.randrange(self.max_draws)
        stream_rng = proc.threads[tid].stream.rng
        for __ in range(draws):
            stream_rng.random()
        return "thread %d stream RNG advanced %d draws" % (tid, draws)


class PartitionScramble(Fault):
    """Raw partition-register corruption (bit-flip model): writes garbage
    directly into the register file, bypassing ``set_shares`` validation.

    Only meaningful on a partitioned machine; a clean run must detect this
    via :class:`~repro.reliability.invariants.InvariantChecker` or repair
    it via ``sanitize_partitions=True``.
    """

    name = "partition-scramble"

    def __init__(self, probability=0.35):
        self.probability = probability

    def before_epoch(self, proc, epoch_id, rng):
        partitions = proc.partitions
        if partitions.shares is None or rng.random() >= self.probability:
            return None
        return corrupt_partitions(partitions, rng)


def corrupt_partitions(partitions, rng):
    """Write one of four kinds of garbage into live partition registers.

    Shared by :class:`PartitionScramble` and :class:`MisbehavingPolicy`;
    returns a description of the corruption.
    """
    shares = list(partitions.shares)
    num = len(shares)
    mode = rng.choice(("negative", "oversubscribe", "wrong-length", "zero"))
    if mode == "negative":
        tid = rng.randrange(num)
        shares[tid] = -shares[tid] - 1
    elif mode == "oversubscribe":
        tid = rng.randrange(num)
        shares[tid] += partitions.config.rename_int
    elif mode == "wrong-length":
        shares.append(rng.randrange(1, 8))
    else:  # zero: starves a thread below the minimum partition
        shares[rng.randrange(num)] = 0
    partitions.shares = list(shares)
    partitions.limit_int_rename = list(shares)
    return "partition registers corrupted (%s): %r" % (mode, shares)


class MisbehavingPolicy(ResourcePolicy):
    """Wrap a real policy and make it emit illegal partitions.

    Delegates every hook to the wrapped policy, then — with probability
    ``probability`` per epoch end — corrupts the partition registers the
    inner policy just programmed.  This models a buggy or adversarial
    policy implementation; the surrounding controller must clamp and
    re-normalize (``sanitize_partitions=True``) rather than crash.

    The wrapper is picklable, so it travels with processor checkpoints and
    replays deterministically.
    """

    def __init__(self, inner, probability=0.5, seed=1234):
        self.inner = inner
        self.probability = probability
        self.rng = random.Random(seed)  # repro: allow-nondeterminism[ND105] (seeded fault-injection schedule)
        self.corruptions = 0
        self.name = "MISBEHAVING(%s)" % inner.name

    @property
    def wants_miss_detection(self):
        return self.inner.wants_miss_detection

    def attach(self, proc):
        self.inner.attach(proc)

    def fetch_priority(self, proc, eligible):
        return self.inner.fetch_priority(proc, eligible)

    def on_cycle(self, proc):
        self.inner.on_cycle(proc)

    def quiescent_wake(self, proc):
        # Corruption happens at epoch ends only, so the wrapper adds no
        # per-cycle behaviour of its own: the inner policy's fast-forward
        # contract is the wrapper's.
        return self.inner.quiescent_wake(proc)

    def on_quiesce(self, proc, start_cycle, num_cycles):
        self.inner.on_quiesce(proc, start_cycle, num_cycles)

    def on_l2_miss_detected(self, proc, instr):
        self.inner.on_l2_miss_detected(proc, instr)

    def on_load_complete(self, proc, instr):
        self.inner.on_load_complete(proc, instr)

    def on_squash(self, proc, tid, after_seq):
        self.inner.on_squash(proc, tid, after_seq)

    def plan_epoch(self, proc, epoch_id):
        return self.inner.plan_epoch(proc, epoch_id)

    def on_epoch_end(self, proc, epoch):
        self.inner.on_epoch_end(proc, epoch)
        if proc.partitions.shares is not None \
                and self.rng.random() < self.probability:
            corrupt_partitions(proc.partitions, self.rng)
            self.corruptions += 1


class FaultInjector:
    """Composable set of faults driven by one seeded RNG.

    Passed to :class:`~repro.core.controller.EpochController` as
    ``injector=``; every epoch it offers each fault a chance to fire and
    records what actually happened in :attr:`events`.
    """

    def __init__(self, faults, seed=0):
        self.faults = list(faults)
        self.rng = random.Random(seed)  # repro: allow-nondeterminism[ND105] (seeded fault-injection schedule)
        self.events = []

    def before_epoch(self, proc, epoch_id):
        for fault in self.faults:
            description = fault.before_epoch(proc, epoch_id, self.rng)
            if description is not None:
                self.events.append(FaultEvent(epoch_id, fault.name,
                                              description))

    def summary(self):
        """{fault name: number of injections}."""
        counts = {}
        for event in self.events:
            counts[event.fault] = counts.get(event.fault, 0) + 1
        return counts
