"""Guarded, resumable experiment execution.

A ``full``-scale sweep runs for hours; a single exception, zero-commit
livelock, or SIGKILL at epoch 30 of 32 must not lose the run.  This module
wraps :func:`~repro.experiments.runner.run_policy` with:

* **budgets** — a per-invocation wall-clock and cycle budget
  (:class:`RunBudget`), raising the structured :class:`BudgetExceeded`
  with all state saved;
* **a watchdog** — :class:`Watchdog` detects zero-commit livelock (no
  thread commits anything for N consecutive epochs);
* **retry-from-last-good-epoch** — every completed epoch the whole
  controller (processor, policy, accounting) is snapshotted; a failed
  epoch is retried from the last good snapshot after clearing fetch locks
  and re-normalizing partitions, up to ``max_retries`` times;
* **on-disk resume** — with a ``run_dir``, snapshots become pickle blobs
  on disk next to a JSONL manifest (:class:`RunStore`, atomic
  write-then-rename), and ``resume=True`` picks an interrupted run up
  where it died.  A finished run leaves ``result.json``; resuming a
  finished run just reloads it.

Because everything the run depends on lives inside the pickled controller
(stream RNGs included), an interrupted-then-resumed run produces *exactly*
the metrics of an uninterrupted one at the same seed.
"""

import json
import os
import pickle
import time

from repro.core.controller import EpochController
from repro.experiments.runner import (
    RunResult,
    make_processor,
    solo_ipcs,
)
from repro.reliability.invariants import InvariantViolation


class ReliabilityError(Exception):
    """Base class for structured, expected failures of a guarded run."""


class LivelockDetected(ReliabilityError):
    """No thread committed a single instruction for N consecutive epochs."""

    def __init__(self, epochs, epoch_id):
        self.epochs = epochs
        self.epoch_id = epoch_id
        super().__init__(
            "zero-commit livelock: no instructions committed for %d "
            "consecutive epochs (last epoch %d)" % (epochs, epoch_id))


class BudgetExceeded(ReliabilityError):
    """The run hit its wall-clock or cycle budget; state was saved."""


class RunInterrupted(ReliabilityError):
    """The run stopped early on request (``stop_after``); state was saved.

    Used by tests and demos to emulate a mid-sweep kill deterministically.
    """


class Watchdog:
    """Detects zero-commit livelock across consecutive epochs."""

    def __init__(self, livelock_epochs=5):
        if livelock_epochs <= 0:
            raise ValueError("livelock_epochs must be positive")
        self.livelock_epochs = livelock_epochs
        self._streak = 0

    def observe(self, result):
        """Feed one :class:`~repro.core.controller.EpochResult`; raises
        :class:`LivelockDetected` when the streak reaches the threshold."""
        if sum(result.committed) == 0:
            self._streak += 1
            if self._streak >= self.livelock_epochs:
                raise LivelockDetected(self._streak, result.epoch_id)
        else:
            self._streak = 0

    def reset(self):
        self._streak = 0


class RunBudget:
    """Wall-clock and simulated-cycle budget for one invocation."""

    def __init__(self, max_wall_seconds=None, max_cycles=None, start_cycle=0):
        self.max_wall_seconds = max_wall_seconds
        self.max_cycles = max_cycles
        self.start_cycle = start_cycle
        self._t0 = time.monotonic()  # repro: allow-nondeterminism[ND101] (watchdog timer, not results)

    def check(self, proc):
        if self.max_wall_seconds is not None:
            elapsed = time.monotonic() - self._t0  # repro: allow-nondeterminism[ND101] (watchdog timer, not results)
            if elapsed > self.max_wall_seconds:
                raise BudgetExceeded(
                    "wall-clock budget exhausted (%.1fs > %.1fs)"
                    % (elapsed, self.max_wall_seconds))
        if self.max_cycles is not None:
            spent = proc.cycle - self.start_cycle
            if spent > self.max_cycles:
                raise BudgetExceeded(
                    "cycle budget exhausted (%d > %d cycles)"
                    % (spent, self.max_cycles))


# ----------------------------------------------------------------------
# On-disk run state
# ----------------------------------------------------------------------


class RunStore:
    """Crash-safe on-disk state of one resilient run.

    Layout of ``run_dir``::

        ckpt_NNNNNN.pkl   controller snapshot after NNNNNN completed epochs
                          (only the two most recent are kept)
        manifest.jsonl    append-only log: one record per completed epoch
        result.json       final RunResult (present only when complete)

    All non-append writes go through write-to-temp + ``os.replace`` so a
    kill mid-write can never corrupt the latest good state.
    """

    def __init__(self, run_dir):
        self.run_dir = run_dir
        os.makedirs(run_dir, exist_ok=True)
        self.manifest_path = os.path.join(run_dir, "manifest.jsonl")
        self.result_path = os.path.join(run_dir, "result.json")

    # -- atomic write helper ----------------------------------------------

    def _write_atomic(self, path, data, mode="wb"):
        tmp = path + ".tmp"
        with open(tmp, mode) as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    # -- checkpoints -------------------------------------------------------

    def _checkpoint_path(self, epochs_done):
        return os.path.join(self.run_dir, "ckpt_%06d.pkl" % epochs_done)

    def _checkpoint_files(self):
        found = []
        for name in os.listdir(self.run_dir):
            if name.startswith("ckpt_") and name.endswith(".pkl"):
                try:
                    found.append((int(name[5:-4]), name))
                except ValueError:
                    continue
        return sorted(found)

    def save_checkpoint(self, epochs_done, blob, keep=2):
        self._write_atomic(self._checkpoint_path(epochs_done), blob)
        for __, name in self._checkpoint_files()[:-keep]:
            try:
                os.remove(os.path.join(self.run_dir, name))
            except OSError:
                pass

    def latest_checkpoint(self):
        """(epochs_done, blob) of the newest readable checkpoint, or None.

        Falls back to the previous checkpoint when the newest is
        unreadable (e.g. the process died mid-write on a filesystem
        without atomic rename).
        """
        for epochs_done, name in reversed(self._checkpoint_files()):
            path = os.path.join(self.run_dir, name)
            try:
                with open(path, "rb") as handle:
                    blob = handle.read()
                pickle.loads(blob)  # readability probe
            except Exception:
                continue
            return epochs_done, blob
        return None

    # -- manifest ----------------------------------------------------------

    def append_manifest(self, record):
        with open(self.manifest_path, "a") as handle:
            handle.write(json.dumps(record) + "\n")

    def manifest_records(self):
        if not os.path.exists(self.manifest_path):
            return []
        records = []
        with open(self.manifest_path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except ValueError:
                    continue  # torn final line from a kill mid-append
        return records

    # -- final result ------------------------------------------------------

    def save_result(self, result):
        payload = json.dumps(result.to_dict(), indent=1)
        self._write_atomic(self.result_path, payload, mode="w")

    def load_result(self):
        if not os.path.exists(self.result_path):
            return None
        try:
            with open(self.result_path) as handle:
                return RunResult.from_dict(json.load(handle))
        except Exception:
            return None


# ----------------------------------------------------------------------
# Controller snapshot/restore
# ----------------------------------------------------------------------


def _snapshot_controller(controller):
    """Serialize everything a resumed run needs: the processor (policy and
    stream RNGs included) plus the controller's accounting."""
    return pickle.dumps({
        "proc": controller.proc,
        "epoch_id": controller.epoch_id,
        "history": controller.history,
        "start_stats": controller._start_stats,
        "repairs": controller.repairs,
    }, protocol=pickle.HIGHEST_PROTOCOL)


def _restore_controller(blob, epoch_size, checker=None, injector=None,
                        sanitize_partitions=False):
    state = pickle.loads(blob)
    controller = EpochController(
        state["proc"], epoch_size=epoch_size, checker=checker,
        injector=injector, sanitize_partitions=sanitize_partitions)
    controller.epoch_id = state["epoch_id"]
    controller.history = state["history"]
    controller._start_stats = state["start_stats"]
    controller.repairs = state["repairs"]
    return controller


def _recover(proc):
    """Post-restore recovery actions: clear stuck fetch state and repair
    any illegal partition registers so the retry can make progress."""
    for thread in proc.threads:
        thread.policy_locked = False
        if thread.fetch_blocked_until > proc.cycle:
            thread.fetch_blocked_until = proc.cycle
    proc.enable_all()
    return proc.partitions.sanitize()


# ----------------------------------------------------------------------
# The resilient runner
# ----------------------------------------------------------------------


def run_policy_resilient(workload, policy, scale, epochs=None, run_dir=None,
                         resume=False, max_retries=2, livelock_epochs=5,
                         max_wall_seconds=None, max_cycles=None, checker=None,
                         injector=None, sanitize_partitions=True,
                         checkpoint_period=1, stop_after=None, log=None,
                         on_epoch=None):
    """Guarded, checkpointing, resumable version of
    :func:`~repro.experiments.runner.run_policy`.

    Returns the same :class:`~repro.experiments.runner.RunResult` (with a
    ``reliability`` report attached); on a clean machine it produces
    *identical* metrics.  With ``run_dir`` set, state persists on disk and
    ``resume=True`` continues an interrupted run — or returns the stored
    result if the run already finished.

    ``policy`` is used only for a fresh start; on resume the checkpointed
    policy (with its learned state) takes over.

    ``on_epoch``, if given, is called with the completed epoch id after
    each epoch's checkpoint/manifest writes — a liveness hook: the sweep
    supervisor touches a per-cell heartbeat file here, which is what lets
    it tell a slow-but-alive cell from a hung one (docs/RELIABILITY.md,
    "Sweep supervision").  Exceptions it raises are *not* retried.
    """
    say = log if log is not None else (lambda message: None)
    target = scale.epochs if epochs is None else epochs
    store = RunStore(run_dir) if run_dir is not None else None

    if store is not None and resume:
        finished = store.load_result()
        if finished is not None:
            say("resume: run already complete, loaded result.json")
            return finished

    controller = None
    resumed_from = None
    if store is not None and resume:
        found = store.latest_checkpoint()
        if found is not None:
            resumed_from, blob = found
            controller = _restore_controller(
                blob, scale.epoch_size, checker=checker, injector=injector,
                sanitize_partitions=sanitize_partitions)
            say("resume: restored checkpoint after epoch %d" % resumed_from)
    if controller is None:
        proc = make_processor(workload, policy, scale)
        controller = EpochController(
            proc, epoch_size=scale.epoch_size, checker=checker,
            injector=injector, sanitize_partitions=sanitize_partitions)

    last_good = _snapshot_controller(controller)
    if store is not None and resumed_from is None:
        store.save_checkpoint(controller.epoch_id, last_good)

    watchdog = Watchdog(livelock_epochs)
    budget = RunBudget(max_wall_seconds=max_wall_seconds,
                       max_cycles=max_cycles,
                       start_cycle=controller.proc.cycle)
    retries = 0
    failures = []
    ran_this_invocation = 0

    while controller.epoch_id < target:
        budget.check(controller.proc)
        try:
            result = controller.run_epoch()
            watchdog.observe(result)
        except (KeyboardInterrupt, SystemExit, BudgetExceeded):
            raise
        except Exception as exc:
            # InvariantViolation, LivelockDetected, or any pipeline crash:
            # roll back to the last good epoch and try again.
            failures.append("epoch %d: %s: %s"
                            % (controller.epoch_id, type(exc).__name__, exc))
            retries += 1
            if retries > max_retries:
                say("giving up after %d retries: %s" % (max_retries, exc))
                raise
            say("retry %d/%d after %s: %s"
                % (retries, max_retries, type(exc).__name__, exc))
            controller = _restore_controller(
                last_good, scale.epoch_size, checker=checker,
                injector=injector, sanitize_partitions=sanitize_partitions)
            watchdog.reset()
            repair = _recover(controller.proc)
            if repair is not None:
                controller.repairs.append(
                    (controller.epoch_id, "retry-recovery", repair))
            continue
        ran_this_invocation += 1
        completed = controller.epoch_id
        if completed % checkpoint_period == 0 or completed >= target:
            last_good = _snapshot_controller(controller)
            if store is not None:
                store.save_checkpoint(completed, last_good)
        if store is not None:
            store.append_manifest({
                "epoch_id": result.epoch_id,
                "kind": result.kind,
                "committed": list(result.committed),
                "cycles": result.cycles,
                "ipcs": list(result.ipcs),
                "shares": result.shares,
                "solo_thread": result.solo_thread,
            })
        if on_epoch is not None:
            on_epoch(completed)
        if stop_after is not None and ran_this_invocation >= stop_after \
                and controller.epoch_id < target:
            raise RunInterrupted(
                "stopped after %d epochs this invocation; state saved "
                "through epoch %d" % (ran_this_invocation,
                                      controller.epoch_id))

    committed, cycles = controller.totals()
    proc = controller.proc
    run_result = RunResult(
        workload=workload.name,
        policy=proc.policy.name,
        ipcs=controller.overall_ipcs(),
        committed=committed,
        cycles=cycles,
        single_ipcs=solo_ipcs(workload, scale),
        epoch_history=controller.history,
        reliability={
            "retries": retries,
            "failures": failures,
            "resumed_from": resumed_from,
            "partition_repairs": len(controller.repairs),
            "faults_injected": injector.summary() if injector is not None
            else {},
        },
    )
    if store is not None:
        store.save_result(run_result)
    return run_result


def compare_policies_resilient(workload, policy_factories, scale,
                               resume_dir, epochs=None, resume=True,
                               log=None, **kwargs):
    """Resumable version of
    :func:`~repro.experiments.runner.compare_policies`.

    Each (workload, policy, seed) run gets its own subdirectory of
    ``resume_dir``; completed runs are skipped on re-invocation, and an
    interrupted run continues from its last checkpoint, so killing a sweep
    mid-flight and re-running the same command completes it with identical
    metrics.
    """
    results = {}
    for name, factory in policy_factories.items():
        run_dir = os.path.join(
            resume_dir, run_slug(workload.name, name, scale.seed))
        results[name] = run_policy_resilient(
            workload, factory(), scale, epochs=epochs, run_dir=run_dir,
            resume=resume, log=log, **kwargs)
    return results


def run_slug(workload_name, policy_name, seed):
    """Filesystem-safe subdirectory name for one (workload, policy, seed)."""
    raw = "%s__%s__s%d" % (workload_name, policy_name, seed)
    return "".join(ch if ch.isalnum() or ch in "-_." else "_" for ch in raw)


__all__ = [
    "BudgetExceeded",
    "InvariantViolation",
    "LivelockDetected",
    "ReliabilityError",
    "RunBudget",
    "RunInterrupted",
    "RunStore",
    "Watchdog",
    "compare_policies_resilient",
    "run_policy_resilient",
    "run_slug",
]
