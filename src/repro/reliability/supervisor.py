"""Supervised execution of independent sweep cells.

The parallel sweep engine (:mod:`repro.experiments.parallel`) trusts its
process pool: one hung worker stalls a whole Figure 9 sweep, and a
SIGKILLed worker surfaces as a raw :class:`BrokenProcessPool` traceback.
This module adds the missing containment layer — the cell-level analogue
of PR 1's epoch-level guard:

* **heartbeat timeouts** — each supervised cell touches a per-cell
  heartbeat file every completed epoch (the ``on_epoch`` hook of
  :func:`~repro.reliability.guard.run_policy_resilient`); a cell whose
  heartbeat goes stale for longer than ``cell_timeout`` seconds is
  declared hung, distinguishing slow-but-alive cells from dead ones;
* **retry with deterministic backoff** — failed/timed-out cells are
  retried up to ``max_attempts`` times with exponential backoff whose
  jitter derives from sha256 of (seed, cell key, attempt), so reruns
  schedule identically;
* **pool rebuild** — a :class:`BrokenProcessPool` (worker SIGKILLed, OOM
  kill) tears the pool down, charges one attempt to every in-flight cell
  (the executor cannot attribute guilt), and rebuilds;
* **quarantine** — a cell that exhausts ``max_attempts`` lands in an
  append-only ``quarantine.jsonl`` ledger (cell key, attempts, last
  traceback, partial-checkpoint path) and the sweep *continues*;
* **graceful degrade** — after ``degrade_after_breaks`` consecutive
  pool collapses with no completed cell in between, remaining cells run
  in-process serially (disable with ``degrade=False``).

The module is deliberately stdlib-only: it sits inside the sweep cache's
code-fingerprint closure (``_CORE_SOURCES``), and importing simulation
modules from here would widen every cell's fingerprint.  All policy about
*what* a cell is lives in the callbacks the engine provides.

Determinism note: supervision changes how results are *produced*, never
what they are — retries resume from checkpoints, completed cells are
validated then cached exactly as unsupervised runs, and a fault-free
supervised sweep is byte-identical to a plain serial one (proved by
``repro chaos``; see docs/RELIABILITY.md "Sweep supervision").
"""

import hashlib
import heapq
import json
import os
import sys
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)

#: The complete sweep event-name schema.  Every JSONL progress event a
#: sweep can emit — from :class:`~repro.experiments.parallel.SweepEngine`
#: (lifecycle), from :class:`CellSupervisor` (containment), or replayed
#: per job by the service tier's streamer — carries one of these names.
#: The table lives here, at the bottom of the import graph, because the
#: engine imports the supervisor and the service tier imports both; all
#: three emit paths validate against it, the CLI progress renderer keys
#: its dispatch table on it, and a drift test pins docs/PARALLEL.md to
#: exactly this set.  Service-*specific* events (job/worker lifecycle)
#: live in :data:`repro.service.protocol.SERVICE_EVENTS` — this module
#: must stay inside ``_CORE_SOURCES`` without dragging the service tier
#: into every cell's code fingerprint.
SWEEP_EVENTS = (
    # SweepEngine lifecycle
    "sweep-start",
    "cell-cached",
    "cell-start",
    "cell-done",
    "sweep-done",
    # CellSupervisor containment
    "cell-retry",
    "cell-timeout",
    "cell-quarantined",
    "pool-broken",
    "pool-rebuilt",
    "sweep-degraded",
    # PackSupervisor containment (batched lane)
    "pack-bisect",
    "cell-evicted",
)


class SupervisorError(Exception):
    """Base class for structured failures of a supervised sweep."""


class CellBootstrapError(SupervisorError):
    """A worker could not even *construct* its cell (unimportable policy,
    broken workload registry inside the child).  Deterministic and fatal:
    retrying cannot help, so the sweep aborts with this error."""


class CellResultError(SupervisorError):
    """A worker returned a payload that fails validation (wrong type,
    non-finite metrics, chaos-corrupted bytes).  Retryable."""


class SweepAborted(SupervisorError):
    """The supervisor could not make progress and degrade was disabled."""


# ----------------------------------------------------------------------
# Deterministic backoff
# ----------------------------------------------------------------------


def deterministic_jitter(seed, key, attempt):
    """A reproducible fraction in [0, 1) from (seed, cell key, attempt).

    sha256 instead of ``random.Random`` keeps the retry schedule out of
    the determinism lint's RNG rules and makes reruns schedule-identical
    by construction.
    """
    blob = ("%s:%s:%d" % (seed, key, attempt)).encode()
    word = int.from_bytes(hashlib.sha256(blob).digest()[:8], "big")
    return word / 2.0 ** 64


def backoff_delay(attempt, base, cap, seed, key):
    """Exponential backoff for retry ``attempt`` (1-based): ``base *
    2**(attempt-1)`` capped at ``cap``, scaled by a deterministic jitter
    factor in [0.5, 1.5)."""
    if attempt < 1:
        raise ValueError("attempt is 1-based, got %d" % attempt)
    if base <= 0:
        return 0.0
    delay = min(cap, base * (2.0 ** (attempt - 1)))
    return delay * (0.5 + deterministic_jitter(seed, key, attempt))


# ----------------------------------------------------------------------
# Quarantine ledger
# ----------------------------------------------------------------------


class QuarantineLedger:
    """Append-only JSONL ledger of cells given up on.

    One object per line; tolerant of a torn or corrupt line (a kill
    mid-append loses at most that record): bad lines are skipped with a
    one-line stderr warning instead of raising, so a crashed sweep's
    ledger still reads back everywhere it is consumed — the supervisor's
    retry accounting, the merged JSON "quarantined" section, and the
    service tier's restart path.  The sweep engine records the cell key,
    attempt count, last traceback and partial-checkpoint path, so a
    quarantined cell can be diagnosed and re-run by hand.
    """

    def __init__(self, path):
        self.path = path

    def record(self, entry):
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(self.path, "a") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")

    def entries(self):
        if not os.path.exists(self.path):
            return []
        records = []
        with open(self.path) as handle:
            for lineno, line in enumerate(handle, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except ValueError:
                    print("warning: skipping corrupt quarantine-ledger "
                          "line %d in %s (torn write from a crash "
                          "mid-append?)" % (lineno, self.path),
                          file=sys.stderr)
        return records


# ----------------------------------------------------------------------
# Supervision policy
# ----------------------------------------------------------------------


class Supervision:
    """Configuration of the cell supervisor.

    Parameters
    ----------
    cell_timeout:
        Seconds a cell's heartbeat may go stale before it is declared
        hung and its worker killed.  ``None`` (default) disables timeout
        detection — crashes and bad payloads are still contained.
    max_attempts:
        Attempts per cell before quarantine (>= 1).
    retry_base_delay / retry_max_delay:
        Exponential backoff parameters, seconds.
    degrade:
        Fall back to in-process serial execution when the pool keeps
        collapsing; ``False`` raises :class:`SweepAborted` instead.
    seed:
        Seeds the deterministic backoff jitter.
    poll_interval:
        Supervisor wake-up period, seconds (future wait + heartbeat
        scan).
    degrade_after_breaks:
        Consecutive pool collapses, with no cell completed in between,
        that trigger the degrade path.
    """

    def __init__(self, cell_timeout=None, max_attempts=3,
                 retry_base_delay=0.5, retry_max_delay=30.0, degrade=True,
                 seed=0, poll_interval=0.2, degrade_after_breaks=2):
        if cell_timeout is not None and cell_timeout <= 0:
            raise ValueError("cell_timeout must be positive or None")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if retry_base_delay < 0 or retry_max_delay < 0:
            raise ValueError("retry delays must be >= 0")
        if poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        if degrade_after_breaks < 1:
            raise ValueError("degrade_after_breaks must be >= 1")
        self.cell_timeout = cell_timeout
        self.max_attempts = max_attempts
        self.retry_base_delay = retry_base_delay
        self.retry_max_delay = retry_max_delay
        self.degrade = degrade
        self.seed = seed
        self.poll_interval = poll_interval
        self.degrade_after_breaks = degrade_after_breaks


# ----------------------------------------------------------------------
# The supervisor
# ----------------------------------------------------------------------


def _describe_error(exc):
    """One-line-ish description of a failure, with the remote traceback
    text the pool attaches to worker exceptions when available."""
    text = "%s: %s" % (type(exc).__name__, exc)
    cause = getattr(exc, "__cause__", None)
    if cause is not None and type(cause).__name__ == "_RemoteTraceback":
        text = "%s\n%s" % (text, cause)
    return text


def _touch(path):
    try:
        with open(path, "a"):
            pass
        os.utime(path, None)
    except OSError:
        pass


class CellSupervisor:
    """Runs independent tasks to completion under timeouts, retries,
    pool rebuilds and quarantine.

    The supervisor knows nothing about simulations; the engine supplies:

    ``worker``
        Picklable top-level function executed per task.
    ``task_args(item, attempt)``
        Positional argument tuple for one attempt (1-based) of ``item``.
    ``item_key(item)`` / ``item_label(item)``
        Stable string key (seeds the backoff jitter, lands in the
        ledger) and human-readable label for events.
    ``heartbeat_path(item)``
        Heartbeat file for ``item``, or ``None`` to skip timeout
        tracking for it.
    ``validate(item, value)``
        Raises :class:`CellResultError` on a bad payload; runs *before*
        the value is accepted, so corrupt results never reach a cache.
    ``on_result(item, value, running)``
        Called once per completed item, in completion order.
    ``emit(event, **fields)``
        Progress event sink (``cell-start``, ``cell-retry``,
        ``cell-timeout``, ``cell-quarantined``, ``pool-broken``,
        ``pool-rebuilt``, ``sweep-degraded``).
    ``ledger`` / ``ledger_info(item)``
        Optional :class:`QuarantineLedger` plus static per-item fields
        (cell key, checkpoint path) merged into each quarantine record.

    After :meth:`run`: ``quarantined`` maps given-up items to their
    ledger entries; ``attempts``, ``retries``, ``timeouts``,
    ``pool_breaks`` and ``degraded`` describe the execution.
    """

    def __init__(self, worker, task_args, jobs, config, item_key=str,
                 item_label=str, heartbeat_path=None, validate=None,
                 on_result=None, emit=None, ledger=None, ledger_info=None):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.worker = worker
        self.task_args = task_args
        self.jobs = jobs
        self.config = config
        self.item_key = item_key
        self.item_label = item_label
        self.heartbeat_path = heartbeat_path
        self.validate = validate
        self.on_result = on_result
        self.emit = emit
        self.ledger = ledger
        self.ledger_info = ledger_info
        self.quarantined = {}
        self.attempts = {}
        self.failures = {}
        self.retries = 0
        self.timeouts = 0
        self.pool_breaks = 0
        self.degraded = False
        self._pool = None
        self._workers = jobs
        self._breaks_in_a_row = 0
        self._seq = 0

    # -- small helpers ---------------------------------------------------

    def _emit(self, event, **fields):
        if event not in SWEEP_EVENTS:
            raise ValueError("unknown sweep event %r (valid: %s)"
                             % (event, ", ".join(SWEEP_EVENTS)))
        if self.emit is not None:
            self.emit(event, **fields)

    def _label(self, item):
        return self.item_label(item)

    def _delay_for(self, item):
        return backoff_delay(
            self.attempts[item], self.config.retry_base_delay,
            self.config.retry_max_delay, self.config.seed,
            self.item_key(item))

    def _heartbeat_file(self, item):
        if self.heartbeat_path is None:
            return None
        return self.heartbeat_path(item)

    def _touch_heartbeat(self, item):
        path = self._heartbeat_file(item)
        if path is not None:
            _touch(path)

    def _heartbeat_age(self, item, now_wall):
        path = self._heartbeat_file(item)
        if path is None:
            return 0.0
        try:
            return now_wall - os.stat(path).st_mtime
        except OSError:
            return 0.0  # no file yet: the submit-time touch races mkdir

    # -- failure accounting ---------------------------------------------

    def _record_failure(self, item, description, waiting):
        """Charge one failed attempt; schedule a retry or quarantine."""
        self.attempts[item] += 1
        self.failures.setdefault(item, []).append(description)
        if self.attempts[item] >= self.config.max_attempts:
            self._quarantine(item)
            return
        delay = self._delay_for(item)
        self.retries += 1
        self._emit("cell-retry", cell=self._label(item),
                   attempt=self.attempts[item] + 1,
                   delay_s=round(delay, 3),
                   error=description.splitlines()[0])
        self._seq += 1
        heapq.heappush(
            waiting, (time.monotonic() + delay, self._seq, item))  # repro: allow-nondeterminism[ND101] (retry scheduling, not results)

    def _quarantine(self, item):
        failures = self.failures.get(item, [])
        entry = {
            "cell": self._label(item),
            "attempts": self.attempts[item],
            "failures": [line.splitlines()[0] for line in failures],
            "last_error": failures[-1] if failures else "",
            "quarantined_at": round(time.time(), 3),  # repro: allow-nondeterminism[ND101] (ledger timestamp, not results)
        }
        if self.ledger_info is not None:
            entry.update(self.ledger_info(item))
        if self.ledger is not None:
            self.ledger.record(entry)
        self.quarantined[item] = entry
        self._emit("cell-quarantined", cell=self._label(item),
                   attempts=self.attempts[item],
                   error=entry["last_error"].splitlines()[0]
                   if entry["last_error"] else "")

    def _complete(self, item, value, results, running):
        results[item] = value
        self._breaks_in_a_row = 0
        if self.on_result is not None:
            self.on_result(item, value, running)

    # -- pool lifecycle --------------------------------------------------

    def _open_pool(self, remaining, rebuild):
        workers = max(1, min(self.jobs, remaining))
        try:
            self._pool = ProcessPoolExecutor(max_workers=workers)
        except Exception as exc:
            self._enter_degraded("cannot %s process pool: %s"
                                 % ("rebuild" if rebuild else "build", exc))
            return
        self._workers = workers
        if rebuild:
            self._emit("pool-rebuilt", workers=workers)

    def _close_pool(self, kill):
        pool = self._pool
        self._pool = None
        if pool is None:
            return
        if kill:
            for proc in list(getattr(pool, "_processes", {}).values()):
                try:
                    proc.kill()
                except Exception:
                    pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass

    def _enter_degraded(self, reason):
        if not self.config.degrade:
            raise SweepAborted(
                "%s; degrade-to-serial disabled (--no-degrade)" % reason)
        self.degraded = True
        self._emit("sweep-degraded", reason=reason)

    # -- entry point -----------------------------------------------------

    def run(self, items):
        """Run every item; returns {item: value} for the completed ones
        (quarantined items are absent — inspect ``quarantined``).

        Pre-seeded ``attempts`` entries survive: the batched lane's
        :class:`~repro.reliability.packsup.PackSupervisor` hands cells it
        charged inside a pack to this per-cell path, and their in-pack
        attempts must keep counting toward ``max_attempts``."""
        items = list(items)
        results = {}
        self.attempts = {item: self.attempts.get(item, 0) for item in items}
        if not items:
            return results
        try:
            if self.jobs == 1 or len(items) == 1:
                self._run_serial(items, results)
            else:
                self._run_pool(items, results)
        finally:
            self._close_pool(kill=False)
        return results

    # -- serial (jobs=1 and the degrade path) ----------------------------

    def _remaining(self, items, results):
        return [item for item in items
                if item not in results and item not in self.quarantined]

    def _run_serial(self, items, results):
        queue = deque(self._remaining(items, results))
        waiting = []
        while queue or waiting:
            if not queue:
                delay = waiting[0][0] - time.monotonic()  # repro: allow-nondeterminism[ND101] (retry scheduling, not results)
                if delay > 0:
                    time.sleep(delay)
            now = time.monotonic()  # repro: allow-nondeterminism[ND101] (retry scheduling, not results)
            while waiting and waiting[0][0] <= now:
                queue.append(heapq.heappop(waiting)[2])
            if not queue:
                continue
            item = queue.popleft()
            attempt = self.attempts[item] + 1
            self._emit("cell-start", cell=self._label(item), attempt=attempt,
                       running=1)
            try:
                value = self.worker(*self.task_args(item, attempt))
                if self.validate is not None:
                    self.validate(item, value)
            except (KeyboardInterrupt, SystemExit, CellBootstrapError):
                raise
            except Exception as exc:
                self._record_failure(item, _describe_error(exc), waiting)
                continue
            self._complete(item, value, results, running=len(queue))

    # -- pooled ----------------------------------------------------------

    def _run_pool(self, items, results):
        ready = deque(items)
        waiting = []   # heap of (due, seq, item)
        inflight = {}  # future -> item, insertion == submission order
        while ready or waiting or inflight:
            if self.degraded:
                self._run_serial(items, results)
                return
            now = time.monotonic()  # repro: allow-nondeterminism[ND101] (retry scheduling, not results)
            while waiting and waiting[0][0] <= now:
                ready.append(heapq.heappop(waiting)[2])
            if self._pool is None and (ready or inflight):
                remaining = len(ready) + len(waiting) + len(inflight)
                self._open_pool(remaining, rebuild=self.pool_breaks > 0)
                if self.degraded:
                    continue
            self._launch(ready, inflight)
            if not inflight:
                if waiting:
                    pause = min(self.config.poll_interval,
                                max(0.0, waiting[0][0] - time.monotonic()))  # repro: allow-nondeterminism[ND101] (retry scheduling, not results)
                    time.sleep(pause)
                continue
            done, __ = wait(list(inflight), timeout=self.config.poll_interval,
                            return_when=FIRST_COMPLETED)
            broken = self._collect(done, inflight, waiting, results)
            if broken:
                self._handle_pool_break(inflight, waiting)
            elif self.config.cell_timeout is not None and inflight:
                self._reap_hung_cells(inflight, ready, waiting)

    def _launch(self, ready, inflight):
        while ready and len(inflight) < self._workers and self._pool is not None:
            item = ready.popleft()
            attempt = self.attempts[item] + 1
            self._touch_heartbeat(item)
            try:
                future = self._pool.submit(
                    self.worker, *self.task_args(item, attempt))
            except (BrokenExecutor, RuntimeError):
                ready.appendleft(item)
                self._close_pool(kill=False)
                return
            inflight[future] = item
            self._emit("cell-start", cell=self._label(item), attempt=attempt,
                       running=len(inflight))

    def _collect(self, done, inflight, waiting, results):
        """Process finished futures; returns True when the pool broke."""
        broken = False
        for future in done:
            item = inflight.pop(future, None)
            if item is None:
                continue  # abandoned future from a killed pool generation
            try:
                value = future.result()
                if self.validate is not None:
                    self.validate(item, value)
            except BrokenExecutor as exc:
                # The executor cannot say which cell's worker died, so
                # every in-flight cell is charged one attempt (see also
                # _handle_pool_break for the ones wait() didn't return).
                broken = True
                self._record_failure(item, _describe_error(exc), waiting)
            except (KeyboardInterrupt, SystemExit, CellBootstrapError):
                raise
            except Exception as exc:
                self._record_failure(item, _describe_error(exc), waiting)
            else:
                self._complete(item, value, results, running=len(inflight))
        return broken

    def _handle_pool_break(self, inflight, waiting):
        self.pool_breaks += 1
        self._breaks_in_a_row += 1
        for future, item in list(inflight.items()):
            self._record_failure(
                item, "BrokenProcessPool: a worker died while this cell "
                "was in flight", waiting)
        inflight.clear()
        self._close_pool(kill=False)
        self._emit("pool-broken", breaks=self.pool_breaks)
        if self._breaks_in_a_row >= self.config.degrade_after_breaks:
            self._enter_degraded(
                "process pool collapsed %d times without completing a cell"
                % self._breaks_in_a_row)

    def _reap_hung_cells(self, inflight, ready, waiting):
        now_wall = time.time()  # repro: allow-nondeterminism[ND101] (heartbeat staleness, not results)
        stale = [item for item in inflight.values()
                 if self._heartbeat_age(item, now_wall)
                 > self.config.cell_timeout]
        if not stale:
            return
        # A hung worker cannot be cancelled, only killed — which takes
        # the whole pool generation with it.  Unlike an external break,
        # guilt is attributable: only the stale cells are charged; the
        # collateral in-flight cells requeue at the front uncharged.
        self.timeouts += len(stale)
        self._close_pool(kill=True)
        stale_set = set(stale)
        collateral = [item for item in inflight.values()
                      if item not in stale_set]
        inflight.clear()
        for item in stale:
            self._emit("cell-timeout", cell=self._label(item),
                       attempt=self.attempts[item] + 1,
                       timeout_s=self.config.cell_timeout)
            self._record_failure(
                item, "CellTimeout: heartbeat stale for more than %.1fs"
                % self.config.cell_timeout, waiting)
        ready.extendleft(reversed(collateral))


__all__ = [
    "CellBootstrapError",
    "CellResultError",
    "CellSupervisor",
    "QuarantineLedger",
    "SWEEP_EVENTS",
    "Supervision",
    "SupervisorError",
    "SweepAborted",
    "backoff_delay",
    "deterministic_jitter",
]
