"""The ``python -m repro verify`` suite: invariants + fault matrix.

Two sections, both scaled by the usual
:class:`~repro.experiments.runner.ExperimentScale`:

1. **Clean invariant suite** — run a representative workload under
   ICOUNT, STATIC and HILL with every invariant enabled (including
   periodic checkpoint-fidelity replays).  Any
   :class:`~repro.reliability.invariants.InvariantViolation` here is a
   simulator bug: the suite fails.
2. **Fault matrix** — run HILL under each fault model (and all of them
   combined) inside the resilient guard.  Every scenario must end in one
   of two acceptable states: *tolerated* (the run completed, with the
   degradation vs. the clean run logged) or *reported* (a structured
   :class:`~repro.reliability.guard.ReliabilityError` /
   ``InvariantViolation``).  An unhandled traceback fails the suite.

:func:`run_verification` returns a process exit code (0 pass, 1 fail).
"""

import traceback

from repro.core.hill_climbing import make_hill_policy
from repro.experiments.runner import run_policy
from repro.policies.icount import ICountPolicy
from repro.policies.static_partition import StaticPartitionPolicy
from repro.reliability.faults import (
    FaultInjector,
    MemoryLatencySpike,
    MisbehavingPolicy,
    PartitionScramble,
    RNGDesync,
    TransientFetchStall,
)
from repro.reliability.guard import ReliabilityError, run_policy_resilient
from repro.reliability.invariants import InvariantChecker, InvariantViolation
from repro.workloads.mixes import get_workload

DEFAULT_WORKLOAD = "art-mcf"


def _clean_factories(scale):
    return {
        "ICOUNT": ICountPolicy,
        "STATIC": StaticPartitionPolicy,
        "HILL": lambda: make_hill_policy(
            "wipc", software_cost=scale.hill_software_cost,
            sample_period=scale.hill_sample_period),
    }


def _fault_scenarios():
    """scenario name -> (fault list, wrap_policy)."""
    return {
        "mem-latency-spike": ([MemoryLatencySpike(burst_probability=0.5)],
                              False),
        "transient-fetch-stall": ([TransientFetchStall()], False),
        "rng-desync": ([RNGDesync()], False),
        "partition-scramble": ([PartitionScramble()], False),
        "misbehaving-policy": ([], True),
        "combined": ([MemoryLatencySpike(), TransientFetchStall(),
                      RNGDesync(), PartitionScramble()], True),
    }


def run_verification(scale, workload_name=DEFAULT_WORKLOAD, out=print,
                     fidelity_period=2, fault_seed=0):
    """Run the invariant suite and fault matrix; return an exit code."""
    workload = get_workload(workload_name)
    factories = _clean_factories(scale)
    failures = []
    clean_hill_ipc = None

    out("invariant suite: %s, %d epochs x %d cycles, fidelity every %s "
        "epochs" % (workload.name, scale.epochs, scale.epoch_size,
                    fidelity_period))
    for name, factory in factories.items():
        checker = InvariantChecker(fidelity_period=fidelity_period)
        try:
            result = run_policy(workload, factory(), scale, checker=checker)
        except InvariantViolation as exc:
            failures.append("clean run %s: %s" % (name, exc))
            out("  FAIL  %-8s %s" % (name, exc))
            continue
        except Exception:
            failures.append("clean run %s: unhandled exception" % name)
            out("  FAIL  %-8s unhandled exception:\n%s"
                % (name, traceback.format_exc()))
            continue
        if name == "HILL":
            clean_hill_ipc = result.avg_ipc
        out("  PASS  %-8s avg IPC %.3f  (%d epochs checked, %d fidelity "
            "replays)" % (name, result.avg_ipc, checker.checks_run,
                          checker.fidelity_checks_run))

    out("")
    out("fault matrix: HILL under the guard (sanitize + watchdog + retry)")
    hill_factory = factories["HILL"]
    for index, (scenario, (faults, wrap)) in enumerate(
            _fault_scenarios().items()):
        policy = hill_factory()
        if wrap:
            policy = MisbehavingPolicy(policy, seed=fault_seed + 100 + index)
        injector = FaultInjector(faults, seed=fault_seed + index) \
            if faults else None
        checker = InvariantChecker(fidelity_period=fidelity_period)
        try:
            result = run_policy_resilient(
                workload, policy, scale, injector=injector, checker=checker,
                sanitize_partitions=True, max_retries=2, livelock_epochs=4)
        except (ReliabilityError, InvariantViolation) as exc:
            out("  REPORTED   %-22s %s: %s"
                % (scenario, type(exc).__name__, exc))
            continue
        except Exception:
            failures.append("fault scenario %s: unhandled exception"
                            % scenario)
            out("  FAIL       %-22s unhandled exception:\n%s"
                % (scenario, traceback.format_exc()))
            continue
        report = result.reliability or {}
        injected = sum(report.get("faults_injected", {}).values())
        if wrap:
            injected += policy.corruptions
        degradation = ""
        if clean_hill_ipc:
            degradation = ", %+.1f%% vs clean" % (
                100.0 * (result.avg_ipc - clean_hill_ipc) / clean_hill_ipc)
        out("  TOLERATED  %-22s avg IPC %.3f%s  (%d faults, %d repairs, "
            "%d retries)" % (scenario, result.avg_ipc, degradation,
                             injected, report.get("partition_repairs", 0),
                             report.get("retries", 0)))

    out("")
    if failures:
        out("verify: FAIL (%d failure%s)"
            % (len(failures), "s" if len(failures) != 1 else ""))
        for failure in failures:
            out("  - %s" % failure)
        return 1
    out("verify: PASS")
    return 0
