"""Chaos harness for the supervised sweep engine.

The supervisor's whole value proposition is a *negative* claim — no
single worker death, hang, or garbage payload changes a sweep's merged
results — and negative claims need adversarial tests.  This module
injects configurable faults into sweep workers and asserts convergence:

* :class:`KillWorker` — SIGKILL the worker at a known epoch (after that
  epoch's checkpoint), the classic OOM-killer / preempted-node failure;
* :class:`HangCell` — stop touching the heartbeat and sleep, so only
  the supervisor's ``cell_timeout`` can recover the cell;
* :class:`CorruptResult` — replace the result payload with garbage, the
  failure a validating supervisor must catch *before* caching;
* :class:`FlakyCell` — raise on the first attempt, succeed after, the
  transient-infrastructure case retries exist for;
* :class:`PoisonCell` — fail every attempt, forcing quarantine;
* :class:`BootstrapCrash` — fail while *constructing* the cell, the
  deterministic error class that must abort instead of retry;
* :class:`MirrorCorrupt` — skew one cell's SoA mirror inside a batched
  pack, the divergence class only the runtime mirror audit can catch.

The ``poison-pack-cell``, ``hang-pack`` and ``mirror-corrupt`` presets
(:data:`BATCHED_CHAOS_PRESETS`) run the whole grid as one supervised
pack so the faults land mid-pack: the PackSupervisor must bisect,
defer, or evict without charging innocent packmates.

Faults are keyed by (cell label, attempt), so the plan needs no shared
state: a retried attempt simply no longer matches.  Kill/hang faults
fire only inside worker processes (``os.getpid() != parent_pid``) —
never in the parent, never in the supervisor's degraded in-process
path, and never under ``jobs=1``.

:func:`run_chaos` is the ``python -m repro chaos`` engine: it runs a
small grid under a preset fault plan with supervision on, runs the same
grid fault-free and serial in a separate cache, and compares the two
merged-JSON documents byte for byte (surviving cells only, when the
preset quarantines by design).

This module is test harness, not simulation: nothing inside the sweep
cache's code-fingerprint closure imports it, so editing a fault model
invalidates no cached results.
"""

import json
import os
import shutil
import signal
import tempfile
import time

from repro.reliability.supervisor import CellBootstrapError, Supervision


class ChaosFlake(RuntimeError):
    """A transient injected failure (healthy on the next attempt)."""


class ChaosPoison(RuntimeError):
    """A persistent injected failure (every attempt fails)."""


# ----------------------------------------------------------------------
# Fault models
# ----------------------------------------------------------------------


class ChaosFault:
    """Base fault: matches a set of cell labels (None = every cell) and
    attempt numbers (None = every attempt); subclasses override one of
    the three hook points."""

    def __init__(self, labels=None, attempts=(1,)):
        self.labels = tuple(labels) if labels is not None else None
        self.attempts = tuple(attempts) if attempts is not None else None

    def matches(self, cell, attempt):
        if self.labels is not None and cell.label not in self.labels:
            return False
        if self.attempts is not None and attempt not in self.attempts:
            return False
        return True

    def before_cell(self, plan, cell, attempt):
        """Runs before the cell is constructed."""

    def on_epoch(self, plan, cell, attempt, epoch_id):
        """Runs after each completed epoch (post checkpoint/manifest)."""

    def on_pack_refresh(self, plan, cell, attempt, epoch_id, core, index):
        """Runs in the batched lane only, at each epoch boundary after
        the pack's SoA mirrors are refreshed and before the runtime
        audit inspects them — the one window where injected mirror
        corruption is observable without touching simulation state."""

    def transform_result(self, plan, cell, attempt, result):
        """May replace the worker's result payload."""
        return result


class KillWorker(ChaosFault):
    """SIGKILL the worker process after epoch ``at_epoch`` completes —
    the checkpoint for that epoch is already on disk, so a resumed retry
    continues exactly there."""

    def __init__(self, labels=None, attempts=(1,), at_epoch=2):
        super().__init__(labels, attempts)
        self.at_epoch = at_epoch

    def on_epoch(self, plan, cell, attempt, epoch_id):
        if (self.matches(cell, attempt) and epoch_id == self.at_epoch
                and plan.in_worker()):
            os.kill(os.getpid(), signal.SIGKILL)


class HangCell(ChaosFault):
    """Sleep inside the epoch hook without touching the heartbeat — to
    the supervisor the cell is indistinguishable from a deadlock, and
    only ``cell_timeout`` can recover it.  ``hang_seconds`` is a safety
    valve: if nothing kills the worker by then, the hang turns into a
    :class:`ChaosFlake` instead of wedging the test suite."""

    def __init__(self, labels=None, attempts=(1,), at_epoch=1,
                 hang_seconds=120.0):
        super().__init__(labels, attempts)
        self.at_epoch = at_epoch
        self.hang_seconds = hang_seconds

    def on_epoch(self, plan, cell, attempt, epoch_id):
        if not (self.matches(cell, attempt) and epoch_id == self.at_epoch
                and plan.in_worker()):
            return
        deadline = time.monotonic() + self.hang_seconds
        while time.monotonic() < deadline:
            time.sleep(0.1)
        raise ChaosFlake("hang safety valve expired after %.0fs"
                         % self.hang_seconds)


class CorruptResult(ChaosFault):
    """Replace the worker's return payload with a string of garbage."""

    def transform_result(self, plan, cell, attempt, result):
        if self.matches(cell, attempt):
            return "chaos:corrupt-payload"
        return result


class FlakyCell(ChaosFault):
    """Raise before the cell is constructed (transient by default:
    attempt 1 only)."""

    def before_cell(self, plan, cell, attempt):
        if self.matches(cell, attempt):
            raise ChaosFlake("injected transient failure (attempt %d)"
                             % attempt)


class PoisonCell(ChaosFault):
    """Raise on *every* attempt: the cell must end up quarantined."""

    def __init__(self, labels=None, attempts=None):
        super().__init__(labels, attempts)

    def before_cell(self, plan, cell, attempt):
        if self.matches(cell, attempt):
            raise ChaosPoison("injected persistent failure (attempt %d)"
                              % attempt)


class BootstrapCrash(ChaosFault):
    """Raise the supervisor's fatal bootstrap error: deterministic,
    must abort the sweep rather than burn retries."""

    def before_cell(self, plan, cell, attempt):
        if self.matches(cell, attempt):
            raise CellBootstrapError(
                "injected bootstrap failure for %s" % cell.label)


class MirrorCorrupt(ChaosFault):
    """Flip one cell's ``_cycle`` mirror entry right after the pack
    refresh at epoch ``at_epoch`` — simulation state is untouched, so
    only the runtime mirror audit (``REPRO_AUDIT=mirror``) can see the
    skew.  The audited engine must evict the cell to the scalar lane,
    where this hook never fires and the rerun is clean."""

    def __init__(self, labels=None, attempts=(1,), at_epoch=1):
        super().__init__(labels, attempts)
        self.at_epoch = at_epoch

    def on_pack_refresh(self, plan, cell, attempt, epoch_id, core, index):
        if self.matches(cell, attempt) and epoch_id == self.at_epoch:
            core._cycle[index] += 1


class ChaosPlan:
    """A picklable bundle of faults handed to supervised workers.

    Records the parent (supervisor) pid at construction; process-killing
    faults consult :meth:`in_worker` so they can never take down the
    parent — in particular the degraded in-process serial path runs the
    same plan safely.
    """

    def __init__(self, faults, parent_pid=None):
        self.faults = tuple(faults)
        self.parent_pid = parent_pid if parent_pid is not None \
            else os.getpid()

    def in_worker(self):
        return os.getpid() != self.parent_pid

    def before_cell(self, cell, attempt):
        for fault in self.faults:
            fault.before_cell(self, cell, attempt)

    def on_epoch(self, cell, attempt, epoch_id):
        for fault in self.faults:
            fault.on_epoch(self, cell, attempt, epoch_id)

    def on_pack_refresh(self, cell, attempt, epoch_id, core, index):
        for fault in self.faults:
            fault.on_pack_refresh(self, cell, attempt, epoch_id, core,
                                  index)

    def transform_result(self, cell, attempt, result):
        for fault in self.faults:
            result = fault.transform_result(self, cell, attempt, result)
        return result


# ----------------------------------------------------------------------
# Presets
# ----------------------------------------------------------------------

#: ``repro chaos --preset`` choices -> one-line description.
CHAOS_PRESETS = {
    "kill-one-worker": "SIGKILL one cell's worker at epoch 2, first "
                       "attempt only; the pool break charges every "
                       "in-flight cell and the retry resumes from the "
                       "epoch-2 checkpoint",
    "kill-storm": "SIGKILL every cell's worker on every pooled attempt; "
                  "the supervisor must degrade to in-process serial "
                  "execution and still finish",
    "hang-one-cell": "one cell stops heartbeating forever; only the "
                     "cell timeout can recover it",
    "corrupt-result": "one cell returns a garbage payload on its first "
                      "attempt; validation must reject it before the "
                      "cache sees it",
    "flaky-cells": "every cell fails its first attempt and succeeds on "
                   "retry",
    "poison-cell": "one cell fails every attempt and must land in "
                   "quarantine.jsonl while the sweep completes around "
                   "it",
    "poison-pack-cell": "one cell of a supervised pack fails every "
                        "attempt; bisection must isolate it into "
                        "quarantine while every innocent packmate's "
                        "result lands",
    "hang-pack": "one cell of a supervised pack stops heartbeating; "
                 "the pack timeout plus bisection must defer the "
                 "hung cell to the scalar lane and finish the rest",
    "mirror-corrupt": "one cell's SoA mirror is skewed mid-pack; the "
                      "runtime mirror audit must evict it to the "
                      "scalar lane with zero quarantines",
}

#: Presets that exercise the batched (packed) lane: ``run_chaos`` runs
#: these with ``batch_cells`` spanning the whole grid so every failure
#: lands inside a multi-cell pack.
BATCHED_CHAOS_PRESETS = frozenset(
    ("poison-pack-cell", "hang-pack", "mirror-corrupt"))


def build_plan(preset, cells, parent_pid=None):
    """(plan, expected_quarantined, default_cell_timeout) for a preset.

    Single-victim presets target the first cell label in sorted order —
    a deterministic choice so reruns inject identically.
    """
    labels = sorted(cell.label for cell in cells)
    if not labels:
        raise ValueError("chaos needs at least one cell")
    target = (labels[0],)
    if preset == "kill-one-worker":
        return (ChaosPlan([KillWorker(target, attempts=(1,), at_epoch=2)],
                          parent_pid), 0, None)
    if preset == "kill-storm":
        return (ChaosPlan([KillWorker(None, attempts=None, at_epoch=1)],
                          parent_pid), 0, None)
    if preset == "hang-one-cell":
        return (ChaosPlan([HangCell(target, attempts=(1,), at_epoch=1)],
                          parent_pid), 0, 10.0)
    if preset == "corrupt-result":
        return (ChaosPlan([CorruptResult(target, attempts=(1,))],
                          parent_pid), 0, None)
    if preset == "flaky-cells":
        return (ChaosPlan([FlakyCell(None, attempts=(1,))],
                          parent_pid), 0, None)
    if preset == "poison-cell":
        return (ChaosPlan([PoisonCell(target)], parent_pid), 1, None)
    if preset == "poison-pack-cell":
        return (ChaosPlan([PoisonCell(target)], parent_pid), 1, None)
    if preset == "hang-pack":
        return (ChaosPlan([HangCell(target, attempts=(1,), at_epoch=1)],
                          parent_pid), 0, 5.0)
    if preset == "mirror-corrupt":
        return (ChaosPlan([MirrorCorrupt(target, attempts=(1,),
                                         at_epoch=1)],
                          parent_pid), 0, None)
    raise ValueError("unknown chaos preset %r (valid: %s)"
                     % (preset, ", ".join(sorted(CHAOS_PRESETS))))


# ----------------------------------------------------------------------
# The harness
# ----------------------------------------------------------------------


def default_grid():
    """The tiny fig4-style grid chaos runs by default: the first two
    MEM2 workloads under ICOUNT and DCRA (4 cells)."""
    return {"groups": ("MEM2",), "policies": ("ICOUNT", "DCRA"),
            "workloads_per_group": 2}


def run_chaos(preset, scale, jobs=2, cell_timeout=None, max_attempts=3,
              degrade=True, keep=False, work_dir=None, grid=None,
              epochs=None, batch_cells=None, log=None):
    """Run one chaos scenario end to end; returns a report dict.

    A supervised engine runs the grid under the preset's fault plan with
    its own cache, resume dir and quarantine ledger inside a throwaway
    work directory; a second, unsupervised serial engine then produces
    the fault-free reference in a separate cache.  The report's ``ok``
    is True when the quarantine count matches the preset's expectation
    and the merged JSON is byte-identical to the reference (for presets
    that quarantine by design, every *surviving* cell record must match
    its reference record instead).

    Presets in :data:`BATCHED_CHAOS_PRESETS` run the supervised engine
    with ``batch_cells`` spanning the whole grid (one pack) unless the
    caller overrides it, and ``mirror-corrupt`` additionally turns the
    runtime mirror audit on.
    """
    from repro.experiments.parallel import (
        SweepEngine,
        grid_cells,
        merged_document,
        merged_json,
    )

    say = log if log is not None else (lambda message: None)
    grid = dict(grid if grid is not None else default_grid())
    grid.setdefault("epochs", epochs)
    cells = grid_cells(**grid)
    plan, expected, preset_timeout = build_plan(preset, cells)
    timeout = cell_timeout if cell_timeout is not None else preset_timeout
    if batch_cells is None:
        batch_cells = len(cells) if preset in BATCHED_CHAOS_PRESETS else 1
    audit = preset == "mirror-corrupt"
    workdir = work_dir or tempfile.mkdtemp(prefix="repro-chaos-")
    say("chaos preset %r: %s" % (preset, CHAOS_PRESETS[preset]))
    say("%d cells, %d jobs, batch_cells %d, work dir %s"
        % (len(cells), jobs, batch_cells, workdir))

    supervision = Supervision(
        cell_timeout=timeout, max_attempts=max_attempts, degrade=degrade,
        seed=scale.seed, retry_base_delay=0.05, retry_max_delay=1.0,
        poll_interval=0.1)
    engine = SweepEngine(
        scale, jobs=jobs, cache_dir=os.path.join(workdir, "cache-chaos"),
        events_path=os.path.join(workdir, "events.jsonl"),
        resume_dir=os.path.join(workdir, "resume"),
        supervision=supervision, fault_plan=plan,
        batch_cells=batch_cells, audit_mirrors=audit,
        on_event=lambda record: say("event: %s" % json.dumps(record))
        if record.get("event") in ("cell-retry", "cell-timeout",
                                   "cell-quarantined", "pool-broken",
                                   "pool-rebuilt", "sweep-degraded",
                                   "pack-bisect", "cell-evicted")
        else None)
    results = engine.run_cells(cells)
    chaos_doc = merged_document(cells, results, scale,
                                quarantined=engine.quarantined)

    reference = SweepEngine(scale, jobs=1,
                            cache_dir=os.path.join(workdir, "cache-ref"))
    ref_results = reference.run_cells(cells)
    ref_doc = merged_document(cells, ref_results, scale)

    if expected == 0:
        identical = (
            merged_json(cells, results, scale,
                        quarantined=engine.quarantined)
            == merged_json(cells, ref_results, scale))
    else:
        by_key = {(rec["workload"], rec["policy"], rec["seed"]): rec
                  for rec in ref_doc["cells"]}
        identical = all(
            rec == by_key.get((rec["workload"], rec["policy"], rec["seed"]))
            for rec in chaos_doc["cells"])
    quarantined = sorted(cell.label for cell in engine.quarantined)
    ok = identical and len(quarantined) == expected
    report = {
        "preset": preset,
        "cells": [cell.label for cell in cells],
        "jobs": jobs,
        "batch_cells": batch_cells,
        "quarantined": quarantined,
        "expected_quarantined": expected,
        "identical": identical,
        "ok": ok,
        "retries": engine.supervisor_stats["retries"],
        "timeouts": engine.supervisor_stats["timeouts"],
        "pool_breaks": engine.supervisor_stats["pool_breaks"],
        "degraded": engine.supervisor_stats["degraded"],
        "bisections": engine.supervisor_stats["bisections"],
        "evicted": engine.supervisor_stats["evicted"],
        "resumed": engine.stats["resumed"],
        "work_dir": workdir if keep else None,
        "quarantine_path": engine.quarantine_path if keep else None,
    }
    if not keep and work_dir is None:
        shutil.rmtree(workdir, ignore_errors=True)
    return report


__all__ = [
    "BATCHED_CHAOS_PRESETS",
    "BootstrapCrash",
    "CHAOS_PRESETS",
    "ChaosFault",
    "ChaosFlake",
    "ChaosPlan",
    "ChaosPoison",
    "CorruptResult",
    "FlakyCell",
    "HangCell",
    "KillWorker",
    "MirrorCorrupt",
    "PoisonCell",
    "build_plan",
    "default_grid",
    "run_chaos",
]
