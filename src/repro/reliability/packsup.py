"""Pack-level supervision for the batched sweep lane.

:mod:`repro.reliability.supervisor` contains failures at *cell*
granularity: one worker, one cell, one heartbeat.  The batched lane
(``repro sweep --batch-cells N``) deliberately breaks that shape — many
cells share one process, one lockstep and one set of replay tapes — so a
single poisoned or hung cell used to be able to take its whole pack's
work with it, which is why packs were previously rejected alongside
supervision.  This module supplies the missing containment layer:

* **pack heartbeats** — the pack worker touches one per-pack heartbeat
  file (plus the ordinary per-cell files) every completed epoch; a pack
  whose heartbeat goes stale for longer than ``cell_timeout`` is
  declared hung and its worker generation killed;
* **deterministic bisection** — a failed or hung multi-cell pack is
  never charged to anyone: it is split in half (first ``ceil(n/2)``
  cells, then the rest — a pure function of the pack order) and both
  halves re-run from the shared tapes.  Repeating the split isolates
  the truly poisonous cell in at most ``ceil(log2 n)`` levels while
  every innocent cell's results land; only the isolated single-cell
  pack is charged an attempt;
* **eviction to the scalar lane** — a charged-but-retryable cell, and
  any cell the runtime mirror audit flags as divergence-risk, leaves
  the pack queue for the ordinary per-cell supervised path
  (``deferred`` / ``evicted``) instead of aborting the sweep;
* **quarantine** — a cell that exhausts ``max_attempts`` lands in the
  same append-only ``quarantine.jsonl`` ledger the per-cell supervisor
  uses, and the sweep continues.

The module also owns the runtime mirror-audit switch
(``REPRO_AUDIT=mirror`` / :class:`forced_audit`): the dynamic
counterpart of lint's static MC4xx mirror-coverage pass.  The audit
itself lives in :func:`repro.pipeline.batched.audit_mirrors` (it needs
the SoA arrays); this module only decides whether it runs, because the
decision must be importable from stdlib-only paths (the CLI, the
service daemon) without touching numpy.

Like the cell supervisor, this module is deliberately stdlib-only: it
sits inside the sweep cache's code-fingerprint closure
(``_CORE_SOURCES``), and supervision changes how results are
*produced*, never what they are — ``repro chaos`` proves every batched
preset converges byte-identically to a fault-free serial reference.
"""

import os
import time
from collections import deque
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, wait

from repro.reliability.supervisor import (
    SWEEP_EVENTS,
    CellBootstrapError,
    SweepAborted,
    _describe_error,
    _touch,
)

__all__ = [
    "AUDIT_MODES",
    "PackSupervisor",
    "audit_mode",
    "forced_audit",
    "touch_heartbeat",
    "validate_batch_cells",
]

# ----------------------------------------------------------------------
# Runtime audit selection (mirrors fastpath's core selection)
# ----------------------------------------------------------------------

#: Valid runtime-audit selections: ``off`` (default) and ``mirror``
#: (cross-check the BatchCore SoA mirrors against scalar processor
#: state at every epoch boundary; divergent cells are evicted to the
#: scalar lane).
AUDIT_MODES = ("off", "mirror")

_forced_audit = None


def audit_mode():
    """The runtime-audit selection for the next batched run.

    Raises :class:`ValueError` for unknown ``REPRO_AUDIT`` values (the
    CLI converts this into its standard one-line exit-2 error).  Like
    ``REPRO_CORE``, the selection is never stored on the processor:
    checkpoints and sweep cache keys are unchanged by auditing.
    """
    if _forced_audit is not None:
        return _forced_audit
    mode = os.environ.get("REPRO_AUDIT", "off")
    if mode not in AUDIT_MODES:
        raise ValueError(
            "REPRO_AUDIT must be one of %s, got %r"
            % ("/".join(AUDIT_MODES), mode))
    return mode


class forced_audit:
    """Context manager pinning the runtime-audit selection for this
    process.  Takes precedence over ``REPRO_AUDIT`` and nests, exactly
    like :class:`repro.pipeline.fastpath.forced_core`."""

    def __init__(self, mode):
        if mode not in AUDIT_MODES:
            raise ValueError(
                "audit mode must be one of %s, got %r"
                % ("/".join(AUDIT_MODES), mode))
        self.mode = mode
        self._previous = None

    def __enter__(self):
        global _forced_audit
        self._previous = _forced_audit
        _forced_audit = self.mode
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        global _forced_audit
        _forced_audit = self._previous
        return False


# ----------------------------------------------------------------------
# Shared validation and heartbeat helpers
# ----------------------------------------------------------------------


def validate_batch_cells(batch_cells):
    """The single authoritative ``batch_cells`` validation.

    Every layer that accepts the knob (CLI, sweep engine, service
    worker, :func:`repro.experiments.batchrun.pack_cells`) funnels
    through here, so a bad value produces one consistent
    :class:`ValueError` message everywhere.  Returns the value.
    """
    if isinstance(batch_cells, bool) or not isinstance(batch_cells, int):
        raise ValueError(
            "batch_cells must be an integer >= 1 (got %r)" % (batch_cells,))
    if batch_cells < 1:
        raise ValueError(
            "batch_cells must be an integer >= 1 (got %r)" % (batch_cells,))
    return batch_cells


def touch_heartbeat(path):
    """Create-or-touch one heartbeat file; never raises (a full disk
    must not turn a healthy pack into a 'hung' one mid-run)."""
    _touch(path)


# ----------------------------------------------------------------------
# The pack supervisor
# ----------------------------------------------------------------------


class PackSupervisor:
    """Runs cell packs to completion under heartbeat timeouts,
    deterministic bisection, eviction and quarantine.

    The supervisor knows nothing about simulations; the engine supplies:

    ``worker``
        Picklable top-level function executed per pack attempt; must
        return a list with one payload per pack cell, where ``None``
        marks a cell the runtime mirror audit evicted.
    ``pack_args(pack, attempt)``
        Positional argument tuple for one attempt (1-based) of a pack.
    ``item_key(cell)`` / ``item_label(cell)``
        Stable string key (lands in the ledger) and human-readable
        label for events.
    ``pack_heartbeat(pack)``
        Heartbeat file for a pack, or ``None`` to skip timeout
        tracking.  The pack worker must touch it every epoch.
    ``validate(cell, value)`` / ``on_result(cell, value, running)`` /
    ``emit(event, **fields)`` / ``ledger`` / ``ledger_info(cell)``
        Exactly as for :class:`~repro.reliability.supervisor.CellSupervisor`.

    Packs execute one at a time: in-process when ``jobs == 1`` and no
    timeout is configured, otherwise through a single-worker process
    pool the supervisor can kill when a pack's heartbeat goes stale.
    Any pack failure — exception, stale heartbeat, broken pool — is
    contained by one uniform rule: a multi-cell pack is *bisected*
    (both halves requeued at the front, first half first, nobody
    charged), a single-cell pack is *charged* (retryable cells land in
    ``deferred`` for the engine's scalar lane; exhausted cells are
    quarantined).  Because the halves re-run from the shared tapes with
    identical seeds, the split sequence — and therefore which cell ends
    up charged — is a pure function of the pack order and the fault.

    After :meth:`run`: ``quarantined`` maps given-up cells to their
    ledger entries; ``deferred`` and ``evicted`` list cells the engine
    must finish on the per-cell path; ``attempts``, ``failures``,
    ``retries``, ``timeouts``, ``pool_breaks``, ``bisections`` and
    ``degraded`` describe the execution.
    """

    def __init__(self, worker, pack_args, jobs, config, item_key=str,
                 item_label=str, pack_heartbeat=None, validate=None,
                 on_result=None, emit=None, ledger=None, ledger_info=None):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.worker = worker
        self.pack_args = pack_args
        self.jobs = jobs
        self.config = config
        self.item_key = item_key
        self.item_label = item_label
        self.pack_heartbeat = pack_heartbeat
        self.validate = validate
        self.on_result = on_result
        self.emit = emit
        self.ledger = ledger
        self.ledger_info = ledger_info
        self.quarantined = {}
        self.attempts = {}
        self.failures = {}
        self.deferred = []
        self.evicted = []
        self.retries = 0
        self.timeouts = 0
        self.pool_breaks = 0
        self.bisections = 0
        self.degraded = False
        self._pool = None
        self._breaks_in_a_row = 0

    # -- small helpers ---------------------------------------------------

    def _emit(self, event, **fields):
        if event not in SWEEP_EVENTS:
            raise ValueError("unknown sweep event %r (valid: %s)"
                             % (event, ", ".join(SWEEP_EVENTS)))
        if self.emit is not None:
            self.emit(event, **fields)

    def _label(self, cell):
        return self.item_label(cell)

    def _use_pool(self):
        return not self.degraded and (
            self.jobs > 1 or self.config.cell_timeout is not None)

    def _heartbeat_file(self, pack):
        if self.pack_heartbeat is None:
            return None
        return self.pack_heartbeat(pack)

    def _heartbeat_age(self, path, now_wall):
        try:
            return now_wall - os.stat(path).st_mtime
        except OSError:
            return 0.0  # no file yet: the submit-time touch races mkdir

    # -- pool lifecycle --------------------------------------------------

    def _open_pool(self):
        rebuild = self.pool_breaks > 0
        try:
            self._pool = ProcessPoolExecutor(max_workers=1)
        except Exception as exc:
            self._enter_degraded("cannot %s pack pool: %s"
                                 % ("rebuild" if rebuild else "build", exc))
            return
        if rebuild:
            self._emit("pool-rebuilt", workers=1)

    def _close_pool(self, kill):
        pool = self._pool
        self._pool = None
        if pool is None:
            return
        if kill:
            for proc in list(getattr(pool, "_processes", {}).values()):
                try:
                    proc.kill()
                except Exception:
                    pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass

    def _enter_degraded(self, reason):
        if not self.config.degrade:
            raise SweepAborted(
                "%s; degrade-to-serial disabled (--no-degrade)" % reason)
        self.degraded = True
        self._emit("sweep-degraded", reason=reason)

    # -- one pack attempt ------------------------------------------------

    def _run_pack_once(self, pack, attempt):
        """Execute one attempt of one pack.

        Returns ``("ok", payload)`` on completion or ``(status,
        description)`` on failure, where ``status`` is ``"error"``,
        ``"timeout"`` or ``"broken"``.  :class:`CellBootstrapError` is
        deterministic and fatal, so it propagates.
        """
        heartbeat = self._heartbeat_file(pack)
        if heartbeat is not None:
            touch_heartbeat(heartbeat)
        args = self.pack_args(pack, attempt)
        if not self._use_pool():
            try:
                return "ok", self.worker(*args)
            except (KeyboardInterrupt, SystemExit, CellBootstrapError):
                raise
            except Exception as exc:
                return "error", _describe_error(exc)
        if self._pool is None:
            self._open_pool()
            if self._pool is None:
                return self._run_pack_once(pack, attempt)  # degraded
        try:
            future = self._pool.submit(self.worker, *args)
        except (BrokenExecutor, RuntimeError):
            self._close_pool(kill=False)
            self._open_pool()
            if self._pool is None:
                return self._run_pack_once(pack, attempt)  # degraded
            future = self._pool.submit(self.worker, *args)
        timeout = self.config.cell_timeout
        while True:
            done, __ = wait([future], timeout=self.config.poll_interval)
            if done:
                try:
                    return "ok", future.result()
                except BrokenExecutor as exc:
                    self.pool_breaks += 1
                    self._breaks_in_a_row += 1
                    self._close_pool(kill=False)
                    self._emit("pool-broken", breaks=self.pool_breaks)
                    if self._breaks_in_a_row \
                            >= self.config.degrade_after_breaks:
                        self._enter_degraded(
                            "pack pool collapsed %d times without "
                            "completing a pack" % self._breaks_in_a_row)
                    return "broken", _describe_error(exc)
                except (KeyboardInterrupt, SystemExit, CellBootstrapError):
                    raise
                except Exception as exc:
                    return "error", _describe_error(exc)
            if timeout is not None and heartbeat is not None:
                now_wall = time.time()  # repro: allow-nondeterminism[ND101] (heartbeat staleness, not results)
                if self._heartbeat_age(heartbeat, now_wall) > timeout:
                    # A hung pack cannot be cancelled, only killed —
                    # and the pool holds nothing else (one pack at a
                    # time), so no collateral accounting is needed.
                    self.timeouts += 1
                    self._close_pool(kill=True)
                    return ("timeout",
                            "PackTimeout: pack heartbeat stale for more "
                            "than %.1fs" % timeout)

    # -- containment -----------------------------------------------------

    def _contain(self, pack, status, description, queue):
        """Apply the uniform containment rule to a failed pack."""
        if len(pack) > 1:
            mid = (len(pack) + 1) // 2
            left, right = pack[:mid], pack[mid:]
            self.bisections += 1
            self._emit("pack-bisect",
                       cells=len(pack), left=len(left), right=len(right),
                       error=description.splitlines()[0])
            queue.appendleft(right)
            queue.appendleft(left)
            return
        cell = pack[0]
        if status == "timeout":
            self._emit("cell-timeout", cell=self._label(cell),
                       attempt=self.attempts[cell] + 1,
                       timeout_s=self.config.cell_timeout)
        self._charge(cell, description)

    def _charge(self, cell, description):
        """Charge one failed attempt to an isolated cell; defer the
        retry to the engine's scalar lane or quarantine."""
        self.attempts[cell] += 1
        self.failures.setdefault(cell, []).append(description)
        if self.attempts[cell] >= self.config.max_attempts:
            self._quarantine(cell)
            return
        self.retries += 1
        self._emit("cell-retry", cell=self._label(cell),
                   attempt=self.attempts[cell] + 1, delay_s=0.0,
                   error=description.splitlines()[0])
        self.deferred.append(cell)

    def _quarantine(self, cell):
        failures = self.failures.get(cell, [])
        entry = {
            "cell": self._label(cell),
            "attempts": self.attempts[cell],
            "failures": [line.splitlines()[0] for line in failures],
            "last_error": failures[-1] if failures else "",
            "quarantined_at": round(time.time(), 3),  # repro: allow-nondeterminism[ND101] (ledger timestamp, not results)
        }
        if self.ledger_info is not None:
            entry.update(self.ledger_info(cell))
        if self.ledger is not None:
            self.ledger.record(entry)
        self.quarantined[cell] = entry
        self._emit("cell-quarantined", cell=self._label(cell),
                   attempts=self.attempts[cell],
                   error=entry["last_error"].splitlines()[0]
                   if entry["last_error"] else "")

    def _accept(self, pack, payload, results, queue):
        """Distribute one completed pack's payload slots to the cells."""
        if not isinstance(payload, (list, tuple)) \
                or len(payload) != len(pack):
            self._contain(pack, "error",
                          "PackPayloadError: pack worker returned %r... "
                          "instead of %d per-cell payloads"
                          % (repr(payload)[:60], len(pack)), queue)
            return
        self._breaks_in_a_row = 0
        for cell, value in zip(pack, payload):
            if value is None:
                self.evicted.append(cell)
                self._emit("cell-evicted", cell=self._label(cell),
                           reason="mirror-divergence")
                continue
            try:
                if self.validate is not None:
                    self.validate(cell, value)
            except (KeyboardInterrupt, SystemExit, CellBootstrapError):
                raise
            except Exception as exc:
                self._charge(cell, _describe_error(exc))
                continue
            results[cell] = value
            if self.on_result is not None:
                self.on_result(cell, value, len(queue))

    # -- entry point -----------------------------------------------------

    def run(self, packs):
        """Run every pack; returns {cell: value} for the cells that
        completed *inside a pack*.  Cells in ``deferred``, ``evicted``
        and ``quarantined`` are absent — the engine finishes the first
        two on the per-cell path."""
        queue = deque()
        for pack in packs:
            pack = list(pack)
            if pack:
                queue.append(pack)
                for cell in pack:
                    self.attempts.setdefault(cell, 0)
        results = {}
        try:
            while queue:
                pack = queue.popleft()
                attempt = 1 + max(self.attempts[cell] for cell in pack)
                for cell in pack:
                    self._emit("cell-start", cell=self._label(cell),
                               attempt=attempt, running=len(pack))
                status, outcome = self._run_pack_once(pack, attempt)
                if status == "ok":
                    self._accept(pack, outcome, results, queue)
                else:
                    self._contain(pack, status, outcome, queue)
        finally:
            self._close_pool(kill=False)
        return results
