"""Reliability subsystem: invariant checking, fault injection, and
guarded/resumable execution.

See ``docs/RELIABILITY.md`` for the full story; the short version:

* :mod:`repro.reliability.invariants` — per-epoch pipeline invariant
  verification (resource conservation, partition legality, monotone
  counters, checkpoint round-trip fidelity), raising structured
  :class:`InvariantViolation` errors.
* :mod:`repro.reliability.faults` — composable fault models perturbing
  the learning loop (memory-latency bursts, transient fetch stalls, RNG
  desync, partition-register corruption, misbehaving policies).
* :mod:`repro.reliability.guard` — :func:`run_policy_resilient` wraps a
  run with budgets, a zero-commit watchdog, retry-from-last-good-epoch,
  and crash-safe on-disk checkpoints with ``--resume`` semantics.
* :mod:`repro.reliability.supervisor` — cell-level containment for
  parallel sweeps: heartbeat timeouts, retry with deterministic backoff,
  pool rebuild after ``BrokenProcessPool``, a ``quarantine.jsonl``
  ledger, and graceful degrade to serial execution.
* :mod:`repro.reliability.chaos` — the ``python -m repro chaos``
  harness: configurable worker faults (SIGKILL at epoch N, hangs,
  corrupted payloads, flakes) proving the supervisor converges to the
  same merged results.
* :mod:`repro.reliability.verify` — the ``python -m repro verify``
  suite (clean invariants + fault matrix).
"""

from repro.reliability.faults import (
    FaultEvent,
    FaultInjector,
    MemoryLatencySpike,
    MisbehavingPolicy,
    PartitionScramble,
    RNGDesync,
    TransientFetchStall,
)
from repro.reliability.guard import (
    BudgetExceeded,
    LivelockDetected,
    ReliabilityError,
    RunBudget,
    RunInterrupted,
    RunStore,
    Watchdog,
    compare_policies_resilient,
    run_policy_resilient,
)
from repro.reliability.invariants import InvariantChecker, InvariantViolation
from repro.reliability.supervisor import (
    CellBootstrapError,
    CellResultError,
    CellSupervisor,
    QuarantineLedger,
    Supervision,
    SupervisorError,
    SweepAborted,
)
from repro.reliability.chaos import CHAOS_PRESETS, ChaosPlan, run_chaos
from repro.reliability.verify import run_verification

__all__ = [
    "BudgetExceeded",
    "CHAOS_PRESETS",
    "CellBootstrapError",
    "CellResultError",
    "CellSupervisor",
    "ChaosPlan",
    "FaultEvent",
    "FaultInjector",
    "InvariantChecker",
    "InvariantViolation",
    "LivelockDetected",
    "MemoryLatencySpike",
    "MisbehavingPolicy",
    "PartitionScramble",
    "QuarantineLedger",
    "RNGDesync",
    "ReliabilityError",
    "RunBudget",
    "RunInterrupted",
    "RunStore",
    "Supervision",
    "SupervisorError",
    "SweepAborted",
    "TransientFetchStall",
    "Watchdog",
    "compare_policies_resilient",
    "run_chaos",
    "run_policy_resilient",
    "run_verification",
]
