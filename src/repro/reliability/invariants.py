"""Pipeline invariant checking.

The hill-climbing feedback loop is only trustworthy if the simulator under
it never silently corrupts state: an over-allocated issue queue or a
non-conserving partition register biases every IPC sample the learner sees.
:class:`InvariantChecker` attaches to an
:class:`~repro.core.controller.EpochController` (via its ``checker=``
parameter) and verifies, at every epoch boundary:

* **Resource conservation** — per-thread IQ/ROB/rename/LSQ/IFQ occupancy
  sums equal the shared global totals, no total exceeds its configured
  capacity, and no free count ever goes negative (delegates to
  :meth:`~repro.pipeline.processor.SMTProcessor.check_invariants`, then
  re-raises with structured context).
* **Partition legality** — programmed shares sum exactly to the shared
  rename pool, respect the minimum partition, and every derived limit list
  is well-formed (defensively, so garbage registers are reported rather
  than crashing the check itself).
* **Monotone counters** — committed-instruction and cycle counters never
  decrease between observations.
* **Epoch sanity** — per-epoch committed counts are non-negative, cycles
  positive, and per-thread IPC never exceeds the commit width.
* **Checkpoint round-trip fidelity** (optional, every
  ``fidelity_period`` epochs) — a
  :class:`~repro.pipeline.checkpoint.Checkpoint` taken at the epoch start
  is materialized and replayed through an identical epoch; the replica
  must match the live machine cycle-for-cycle and counter-for-counter.

Every failure raises :class:`InvariantViolation` carrying the invariant
name, the epoch/cycle where it tripped, and a details mapping — a
structured, machine-readable report instead of a bare assertion.
"""

from repro.pipeline.checkpoint import Checkpoint


class InvariantViolation(Exception):
    """A pipeline invariant failed, with full context attached."""

    def __init__(self, invariant, message, epoch_id=None, cycle=None,
                 details=None):
        self.invariant = invariant
        self.epoch_id = epoch_id
        self.cycle = cycle
        self.details = dict(details or {})
        where = []
        if epoch_id is not None:
            where.append("epoch %d" % epoch_id)
        if cycle is not None:
            where.append("cycle %d" % cycle)
        suffix = (" [%s]" % ", ".join(where)) if where else ""
        super().__init__("[%s] %s%s" % (invariant, message, suffix))

    def to_dict(self):
        """JSON-friendly form (used by run manifests and ``repro verify``)."""
        return {
            "invariant": self.invariant,
            "message": str(self),
            "epoch_id": self.epoch_id,
            "cycle": self.cycle,
            "details": {key: repr(value)
                        for key, value in self.details.items()},
        }


def _stats_signature(proc):
    """Counters that must match exactly between a live machine and a
    checkpoint replay of the same epoch."""
    stats = proc.stats
    return {
        "cycle": proc.cycle,
        "stat_cycles": stats.cycles,
        "committed": tuple(stats.committed),
        "squashed": tuple(stats.squashed),
        "mispredicts": tuple(stats.mispredicts),
        "l2_misses": tuple(stats.l2_misses),
        "dl1_misses": proc.hierarchy.dl1.stats.misses,
        "shares": None if proc.partitions.shares is None
        else tuple(proc.partitions.shares),
    }


class InvariantChecker:
    """Per-epoch invariant verification for one controller/processor pair.

    Parameters
    ----------
    fidelity_period:
        Run the (expensive: one pickle round-trip plus one epoch replay)
        checkpoint-fidelity check every this many epochs; ``None``
        disables it.
    """

    def __init__(self, fidelity_period=None):
        if fidelity_period is not None and fidelity_period <= 0:
            raise ValueError("fidelity_period must be positive or None")
        self.fidelity_period = fidelity_period
        self.checks_run = 0
        self.fidelity_checks_run = 0
        self._last_committed = None
        self._last_cycles = None
        self._pending_fidelity = None  # (epoch_id, Checkpoint)

    # -- controller hooks --------------------------------------------------

    def before_epoch(self, controller, proc):
        """Capture the epoch-start checkpoint when a fidelity check is due."""
        if self.fidelity_period is None:
            return
        if controller.epoch_id % self.fidelity_period == 0:
            self._pending_fidelity = (controller.epoch_id, Checkpoint(proc))

    def after_epoch(self, controller, proc, result):
        """Run the full invariant suite for one completed epoch."""
        self.checks_run += 1
        epoch_id = result.epoch_id
        self._check_conservation(proc, epoch_id)
        self._check_partitions(proc, epoch_id)
        self._check_monotone(proc, epoch_id)
        self._check_epoch_result(proc, result)
        if self._pending_fidelity is not None \
                and self._pending_fidelity[0] == epoch_id:
            pending = self._pending_fidelity
            self._pending_fidelity = None
            self._check_fidelity(controller, proc, pending[1], epoch_id)

    # -- individual invariants ---------------------------------------------

    def _check_conservation(self, proc, epoch_id):
        try:
            proc.check_invariants()
        except AssertionError as exc:
            raise InvariantViolation(
                "resource-conservation", str(exc), epoch_id=epoch_id,
                cycle=proc.cycle,
                details={"occupancy": [proc.occupancy(tid)
                                       for tid in range(proc.num_threads)]},
            ) from None
        for name, total in (("ifq", proc.ifq_total),
                            ("iq_int", proc.iq_int_total),
                            ("iq_fp", proc.iq_fp_total),
                            ("ren_int", proc.ren_int_total),
                            ("ren_fp", proc.ren_fp_total),
                            ("lsq", proc.lsq_total),
                            ("rob", proc.rob_total)):
            if total < 0:
                raise InvariantViolation(
                    "resource-conservation",
                    "global %s total is negative (%d): free count "
                    "underflow" % (name, total),
                    epoch_id=epoch_id, cycle=proc.cycle,
                    details={"structure": name, "total": total},
                )

    def _check_partitions(self, proc, epoch_id):
        problem = proc.partitions.legality_error()
        if problem is not None:
            raise InvariantViolation(
                "partition-legality", problem, epoch_id=epoch_id,
                cycle=proc.cycle,
                details={"shares": proc.partitions.shares,
                         "limit_int_rename": proc.partitions.limit_int_rename,
                         "limit_int_iq": proc.partitions.limit_int_iq,
                         "limit_rob": proc.partitions.limit_rob},
            )
        if proc.partitions.shares is not None:
            config = proc.config
            for name, limits, capacity in (
                ("int_iq", proc.partitions.limit_int_iq, config.iq_int_size),
                ("rob", proc.partitions.limit_rob, config.rob_size),
            ):
                if sum(limits) != capacity:
                    raise InvariantViolation(
                        "partition-legality",
                        "derived %s limits sum %d != capacity %d"
                        % (name, sum(limits), capacity),
                        epoch_id=epoch_id, cycle=proc.cycle,
                        details={"limits": limits},
                    )

    def _check_monotone(self, proc, epoch_id):
        committed = list(proc.stats.committed)
        cycles = proc.stats.cycles
        if self._last_committed is not None:
            for tid, (now, before) in enumerate(
                    zip(committed, self._last_committed)):
                if now < before:
                    raise InvariantViolation(
                        "monotone-counters",
                        "thread %d committed counter went backwards "
                        "(%d -> %d)" % (tid, before, now),
                        epoch_id=epoch_id, cycle=proc.cycle,
                        details={"before": self._last_committed,
                                 "now": committed},
                    )
            if cycles < self._last_cycles:
                raise InvariantViolation(
                    "monotone-counters",
                    "cycle counter went backwards (%d -> %d)"
                    % (self._last_cycles, cycles),
                    epoch_id=epoch_id, cycle=proc.cycle,
                )
        self._last_committed = committed
        self._last_cycles = cycles

    def _check_epoch_result(self, proc, result):
        if result.cycles <= 0:
            raise InvariantViolation(
                "epoch-sanity", "epoch charged %d cycles" % result.cycles,
                epoch_id=result.epoch_id, cycle=proc.cycle,
            )
        for tid, count in enumerate(result.committed):
            if count < 0:
                raise InvariantViolation(
                    "epoch-sanity",
                    "thread %d committed %d instructions this epoch"
                    % (tid, count),
                    epoch_id=result.epoch_id, cycle=proc.cycle,
                    details={"committed": result.committed},
                )
        width = proc.config.commit_width
        for tid, ipc in enumerate(result.ipcs):
            if not (0.0 <= ipc <= width):
                raise InvariantViolation(
                    "epoch-sanity",
                    "thread %d epoch IPC %.3f outside [0, commit width %d]"
                    % (tid, ipc, width),
                    epoch_id=result.epoch_id, cycle=proc.cycle,
                    details={"ipcs": result.ipcs},
                )

    def _check_fidelity(self, controller, proc, checkpoint, epoch_id):
        """Replay the epoch from its start checkpoint; the replica must
        match the live machine exactly."""
        from repro.core.controller import EpochController

        self.fidelity_checks_run += 1
        replay_proc = checkpoint.materialize()
        replay = EpochController(
            replay_proc, epoch_size=controller.epoch_size,
            sanitize_partitions=controller.sanitize_partitions,
        )
        replay.epoch_id = epoch_id
        replay.run_epoch()
        live = _stats_signature(proc)
        replica = _stats_signature(replay_proc)
        if live != replica:
            diverged = sorted(key for key in live
                              if live[key] != replica[key])
            raise InvariantViolation(
                "checkpoint-fidelity",
                "replayed epoch diverged from the live run on: %s"
                % ", ".join(diverged),
                epoch_id=epoch_id, cycle=proc.cycle,
                details={"live": live, "replay": replica},
            )
