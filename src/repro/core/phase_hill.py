"""Phase-based hill-climbing (Section 5).

Hill-climbing's main limitation is finite learning time: every time the
workload's behaviour changes, the climber must re-walk the hill.  This
extension attacks that with phase detection and prediction:

* Each epoch's BBV signature is classified into a phase ID
  (:class:`~repro.phase.detector.PhaseTable`).  When a previously seen
  phase recurs, the anchor partitioning learned for it last time is
  restored immediately instead of being re-learned.
* An RLE Markov predictor (:class:`~repro.phase.predictor.RLEMarkovPredictor`)
  predicts the next epoch's phase; when the prediction names a different,
  already-learned phase, its anchor is adopted ahead of time.

The paper reports a modest overall win (+0.4%) concentrated in
temporally-limited (TL) workloads (+2.1%); the Section 5 bench checks the
same pattern.
"""

from repro.core.hill_climbing import HillClimbingPolicy
from repro.phase.bbv import BBVCollector
from repro.phase.detector import PhaseTable
from repro.phase.predictor import RLEMarkovPredictor


class PhaseHillPolicy(HillClimbingPolicy):
    """Hill-climbing with per-phase anchor memory and phase prediction."""

    def __init__(self, metric=None, delta=None, software_cost=None,
                 sample_period=None, bbv_buckets=64, phase_capacity=128,
                 phase_threshold=1.0, predictor_entries=2048):
        kwargs = {}
        if delta is not None:
            kwargs["delta"] = delta
        if software_cost is not None:
            kwargs["software_cost"] = software_cost
        if sample_period is not None:
            kwargs["sample_period"] = sample_period
        super().__init__(metric=metric, **kwargs)
        self.name = "PHASE-%s" % self.metric.name
        self.bbv_buckets = bbv_buckets
        self.phase_table = PhaseTable(capacity=phase_capacity,
                                      threshold=phase_threshold)
        self.phase_predictor = RLEMarkovPredictor(entries=predictor_entries)
        self.phase_anchor = {}       # phase_id -> learned anchor shares
        self.current_phase = None
        self.phase_reuses = 0
        self.phase_switches = 0

    def attach(self, proc):
        super().attach(proc)
        proc.bbv = BBVCollector(proc.num_threads, buckets=self.bbv_buckets)
        self.current_phase = None

    def on_epoch_end(self, proc, epoch):
        if epoch.kind == "solo":
            super().on_epoch_end(proc, epoch)
            return
        signature = proc.bbv.harvest()
        phase_id = self.phase_table.classify(signature)
        if phase_id != self.current_phase:
            self.phase_switches += 1
            stored = self.phase_anchor.get(phase_id)
            if stored is not None:
                # Re-entering a learned phase: skip re-learning and resume
                # from its best-known partitioning.
                self.anchor = list(stored)
                self.phase_reuses += 1
            self.current_phase = phase_id
        self.phase_predictor.observe(phase_id)
        # Run the normal Figure 8 update against the (possibly restored)
        # anchor, then bank the refined anchor for this phase.
        super().on_epoch_end(proc, epoch)
        self.phase_anchor[phase_id] = list(self.anchor)
        # If the predictor expects a different, already-learned phase next
        # epoch, adopt its anchor ahead of the change.
        predicted = self.phase_predictor.predict_next()
        if predicted is not None and predicted != phase_id:
            stored = self.phase_anchor.get(predicted)
            if stored is not None:
                self.anchor = list(stored)
                self._apply_trial(proc)
