"""RAND-HILL: checkpointed multi-start hill-climbing (Section 4.3).

Exhaustive search is intractable for 4-thread machines, so the paper's
4-thread ideal runs the Figure 8 hill climber *with checkpointing*: every
trial restores machine state to the epoch-start checkpoint (zero overhead),
and when a pass reaches a peak a new pass starts from a random anchor.
The search for one epoch stops after ``budget`` total trials (128 in the
paper); the best partitioning found is then used to advance the machine.
"""

import random
from dataclasses import dataclass

from repro.core.controller import EpochResult
from repro.core.metrics import WeightedIPC
from repro.core.partition import clamp_shares, shift_shares
from repro.pipeline.checkpoint import Checkpoint


@dataclass
class RandHillEpoch:
    """One RAND-HILL epoch: best found + search statistics."""

    epoch_id: int
    best_shares: tuple
    best_value: float
    trials: int
    passes: int
    result: EpochResult


class RandHillLearner:
    """Multi-start hill-climbing over each epoch via checkpoints."""

    def __init__(self, proc, epoch_size, metric=None, single_ipcs=None,
                 delta=4, budget=128, seed=0):
        if budget <= 0:
            raise ValueError("budget must be positive")
        self.proc = proc
        self.epoch_size = epoch_size
        self.metric = metric if metric is not None else WeightedIPC()
        self.single_ipcs = single_ipcs
        self.delta = delta
        self.budget = budget
        self.rng = random.Random(seed)  # repro: allow-nondeterminism[ND105] (seeded from the experiment config)
        self.epoch_id = 0
        self.epochs = []
        self._start_stats = proc.stats.copy()

    def _evaluate(self, checkpoint, shares):
        trial = checkpoint.materialize()
        trial.partitions.set_shares(shares)
        before = trial.stats.copy()
        trial.run(self.epoch_size)
        committed, cycles = trial.stats.delta_since(before)
        ipcs = [count / max(cycles, 1) for count in committed]
        if self.metric.needs_single_ipc:
            return self.metric.value(ipcs, self.single_ipcs)
        return self.metric.value(ipcs)

    def _random_anchor(self, num_threads, total, minimum):
        raw = [self.rng.randrange(minimum, total) for __ in range(num_threads)]
        scale = total / max(1, sum(raw))
        return clamp_shares([share * scale for share in raw], total, minimum)

    def run_epoch(self):
        """Search the current epoch with a ``budget``-trial multi-start hill
        climb, then advance with the best partitioning found."""
        proc = self.proc
        config = proc.config
        num = proc.num_threads
        total = config.rename_int
        minimum = config.min_partition
        checkpoint = Checkpoint(proc)

        remaining = self.budget
        passes = 0
        best_shares = None
        best_value = None
        while remaining > 0:
            passes += 1
            anchor = self._random_anchor(num, total, minimum)
            previous_round_best = None
            while remaining > 0:
                round_best_value = None
                round_best_thread = None
                for favored in range(num):
                    if remaining == 0:
                        break
                    trial = shift_shares(anchor, favored, self.delta, total, minimum)
                    value = self._evaluate(checkpoint, trial)
                    remaining -= 1
                    if best_value is None or value > best_value:
                        best_value = value
                        best_shares = tuple(trial)
                    if round_best_value is None or value > round_best_value:
                        round_best_value = value
                        round_best_thread = favored
                if round_best_value is None:
                    break
                if previous_round_best is not None and \
                        round_best_value <= previous_round_best:
                    break  # peak reached: start a new pass
                previous_round_best = round_best_value
                anchor = shift_shares(anchor, round_best_thread, self.delta,
                                      total, minimum)

        self.proc = checkpoint.materialize()
        self.proc.partitions.set_shares(list(best_shares))
        before = self.proc.stats.copy()
        self.proc.run(self.epoch_size)
        committed, cycles = self.proc.stats.delta_since(before)
        result = EpochResult(
            epoch_id=self.epoch_id,
            kind="normal",
            committed=committed,
            cycles=cycles,
            shares=list(best_shares),
        )
        epoch = RandHillEpoch(
            epoch_id=self.epoch_id,
            best_shares=best_shares,
            best_value=best_value,
            trials=self.budget - remaining,
            passes=passes,
            result=result,
        )
        self.epochs.append(epoch)
        self.epoch_id += 1
        return epoch

    def run(self, num_epochs):
        return [self.run_epoch() for __ in range(num_epochs)]

    def overall_ipcs(self):
        """Whole-run per-thread IPCs over the committed epochs."""
        committed, cycles = self.proc.stats.delta_since(self._start_stats)
        if cycles == 0:
            return [0.0] * self.proc.num_threads
        return [count / cycles for count in committed]
