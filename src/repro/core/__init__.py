"""The paper's contribution: learning-based SMT resource distribution.

* :mod:`repro.core.metrics` — the three SMT performance metrics
  (Equations 1-3) used both to evaluate end performance and as the
  learning-feedback signal.
* :mod:`repro.core.partition` — share arithmetic (clamping, normalising,
  candidate grids) over the integer-rename partition knob.
* :mod:`repro.core.controller` — the epoch loop: runs fixed-size epochs,
  computes performance feedback, invokes the policy.
* :mod:`repro.core.hill_climbing` — the Figure 8 on-line hill-climbing
  algorithm (the headline technique).
* :mod:`repro.core.offline` — OFF-LINE: idealized exhaustive per-epoch
  search via checkpointing (the Section 3 limit study).
* :mod:`repro.core.rand_hill` — RAND-HILL: checkpointed multi-start
  hill-climbing used as the 4-thread ideal (Section 4.3).
* :mod:`repro.core.phase_hill` — the Section 5 extension: BBV phase
  detection + Markov phase prediction to reuse learned partitions.
"""

from repro.core.metrics import (
    AvgIPC,
    HarmonicMeanWeightedIPC,
    PerformanceMetric,
    WeightedIPC,
    metric_by_name,
)
from repro.core.controller import EpochController, EpochResult
from repro.core.hill_climbing import HillClimbingPolicy
from repro.core.offline import OfflineEpoch, OfflineExhaustiveLearner
from repro.core.rand_hill import RandHillLearner
from repro.core.phase_hill import PhaseHillPolicy

__all__ = [
    "PerformanceMetric",
    "AvgIPC",
    "WeightedIPC",
    "HarmonicMeanWeightedIPC",
    "metric_by_name",
    "EpochController",
    "EpochResult",
    "HillClimbingPolicy",
    "OfflineExhaustiveLearner",
    "OfflineEpoch",
    "RandHillLearner",
    "PhaseHillPolicy",
]
