"""SMT performance metrics (Section 3.1.1, Equations 1-3).

Each metric maps per-thread IPCs (and, for the weighted metrics, the
threads' stand-alone ``SingleIPC`` values) to a single score:

* :class:`AvgIPC` — throughput (Equation 1).
* :class:`WeightedIPC` — average weighted IPC, i.e. execution-time
  reduction (Equation 2).
* :class:`HarmonicMeanWeightedIPC` — harmonic mean of weighted IPC,
  rewarding both performance and fairness (Equation 3).

The same objects serve two roles: evaluating end performance and acting as
the learning-feedback signal (hill-climbing "directly optimizes" whichever
metric it is given).
"""

_EPSILON = 1e-9


class PerformanceMetric:
    """Interface: combine per-thread IPCs into one score."""

    name = "metric"
    #: Whether :meth:`value` requires stand-alone SingleIPC values.
    needs_single_ipc = False

    def value(self, ipcs, single_ipcs=None):
        raise NotImplementedError

    def __repr__(self):
        return "<%s>" % (self.name,)


class AvgIPC(PerformanceMetric):
    """Equation 1: sum of per-thread IPCs (total throughput)."""

    name = "avg_ipc"

    def value(self, ipcs, single_ipcs=None):
        return float(sum(ipcs))


class WeightedIPC(PerformanceMetric):
    """Equation 2: mean of IPC_i / SingleIPC_i."""

    name = "weighted_ipc"
    needs_single_ipc = True

    def value(self, ipcs, single_ipcs=None):
        single_ipcs = _checked_single(ipcs, single_ipcs)
        total = 0.0
        for ipc, single in zip(ipcs, single_ipcs):
            total += ipc / max(single, _EPSILON)
        return total / len(ipcs)


class HarmonicMeanWeightedIPC(PerformanceMetric):
    """Equation 3: T / sum(SingleIPC_i / IPC_i).

    Returns 0 when any thread made no progress — a starved thread is the
    worst possible fairness outcome.
    """

    name = "harmonic_weighted_ipc"
    needs_single_ipc = True

    def value(self, ipcs, single_ipcs=None):
        single_ipcs = _checked_single(ipcs, single_ipcs)
        denominator = 0.0
        for ipc, single in zip(ipcs, single_ipcs):
            if ipc <= 0.0:
                return 0.0
            denominator += max(single, _EPSILON) / ipc
        return len(ipcs) / denominator


def _checked_single(ipcs, single_ipcs):
    """Validate SingleIPC inputs; default to 1.0 for unsampled threads."""
    if single_ipcs is None:
        return [1.0] * len(ipcs)
    if len(single_ipcs) != len(ipcs):
        raise ValueError(
            "expected %d SingleIPC values, got %d" % (len(ipcs), len(single_ipcs))
        )
    return [1.0 if single is None else single for single in single_ipcs]


_METRICS = {
    metric.name: metric for metric in (AvgIPC(), WeightedIPC(), HarmonicMeanWeightedIPC())
}
_ALIASES = {
    "ipc": "avg_ipc",
    "wipc": "weighted_ipc",
    "hwipc": "harmonic_weighted_ipc",
}


def metric_by_name(name):
    """Look up a metric instance by name or alias (ipc/wipc/hwipc)."""
    key = _ALIASES.get(name.lower(), name.lower())
    try:
        return _METRICS[key]
    except KeyError:
        raise KeyError(
            "unknown metric %r (known: %s)" % (name, ", ".join(sorted(_METRICS)))
        ) from None
