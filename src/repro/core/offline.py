"""OFF-LINE: the idealized exhaustive learning algorithm (Section 3.1).

At the start of each epoch the machine is checkpointed; the epoch is then
executed once for every candidate partitioning on a stride grid, the best
trial's partitioning is selected using performance feedback from the
*currently executing* epoch, and the machine advances with that
partitioning.  Only the best trial's execution time is charged — the
sampling cost of the other trials is free, which is what makes OFF-LINE an
upper bound rather than a realizable policy.

The paper sweeps every 2nd of 256 partitionings (127 trials/epoch); the
``stride`` parameter controls that here (tests use stride 2 on small
machines, benches use coarser strides — see EXPERIMENTS.md).

As a by-product, OFF-LINE records the full performance-vs-partitioning
curve of every epoch, which feeds the hill-width analysis (Figures 6/7)
and the gray-scale behaviour plots (Figure 12).
"""

from dataclasses import dataclass

from repro.core.controller import EpochResult
from repro.core.metrics import WeightedIPC
from repro.core.partition import share_grid
from repro.pipeline.checkpoint import Checkpoint


@dataclass
class OfflineEpoch:
    """One OFF-LINE epoch: the swept curve plus the committed result."""

    epoch_id: int
    #: List of (shares tuple, metric value, per-thread IPCs) per trial.
    curve: list
    best_shares: tuple
    best_value: float
    result: EpochResult

    def curve_over_first_share(self):
        """(first-thread share, value) pairs, sorted — the Figure 6 view."""
        points = [(shares[0], value) for shares, value, __ in self.curve]
        return sorted(points)


def exhaustive_curve(checkpoint, epoch_size, metric, single_ipcs, stride):
    """Sweep every stride-grid partitioning of one epoch from a checkpoint.

    Returns (curve, best_shares, best_value) where ``curve`` is a list of
    (shares tuple, metric value, per-thread IPCs).  Used by the OFF-LINE
    learner and by the synchronized comparisons that replay OFF-LINE's
    search from another policy's machine state (Figure 12).
    """
    probe = checkpoint.materialize()
    config = probe.config
    num_threads = probe.num_threads
    curve = []
    best_shares = None
    best_value = None
    for shares in share_grid(num_threads, config.rename_int,
                             config.min_partition, stride):
        trial = checkpoint.materialize()
        trial.partitions.set_shares(shares)
        before = trial.stats.copy()
        trial.run(epoch_size)
        committed, cycles = trial.stats.delta_since(before)
        ipcs = [count / max(cycles, 1) for count in committed]
        value = metric.value(ipcs, single_ipcs) if metric.needs_single_ipc \
            else metric.value(ipcs)
        curve.append((tuple(shares), value, ipcs))
        if best_value is None or value > best_value:
            best_value = value
            best_shares = tuple(shares)
    return curve, best_shares, best_value


class OfflineExhaustiveLearner:
    """Checkpoint-replay exhaustive search, one epoch at a time.

    Parameters
    ----------
    proc:
        Processor whose policy respects the programmed partitions and uses
        ICOUNT fetch (e.g. a ``StaticPartitionPolicy``).
    epoch_size:
        Epoch length in cycles.
    metric:
        Selection metric (the paper uses weighted IPC for the limit study).
    single_ipcs:
        Stand-alone IPCs for the weighted metrics, known a priori off-line.
    stride:
        Grid stride over the integer-rename shares.
    """

    def __init__(self, proc, epoch_size, metric=None, single_ipcs=None, stride=16):
        self.proc = proc
        self.epoch_size = epoch_size
        self.metric = metric if metric is not None else WeightedIPC()
        self.single_ipcs = single_ipcs
        self.stride = stride
        self.epoch_id = 0
        self.epochs = []
        self._start_stats = proc.stats.copy()

    def run_epoch(self):
        """Exhaustively search this epoch, then advance with the winner."""
        checkpoint = Checkpoint(self.proc)
        curve, best_shares, best_value = exhaustive_curve(
            checkpoint, self.epoch_size, self.metric, self.single_ipcs,
            self.stride,
        )
        # Advance the real machine under the best partitioning; only this
        # execution is charged.
        self.proc = checkpoint.materialize()
        self.proc.partitions.set_shares(best_shares)
        before = self.proc.stats.copy()
        self.proc.run(self.epoch_size)
        committed, cycles = self.proc.stats.delta_since(before)
        result = EpochResult(
            epoch_id=self.epoch_id,
            kind="normal",
            committed=committed,
            cycles=cycles,
            shares=list(best_shares),
        )
        epoch = OfflineEpoch(
            epoch_id=self.epoch_id,
            curve=curve,
            best_shares=best_shares,
            best_value=best_value,
            result=result,
        )
        self.epochs.append(epoch)
        self.epoch_id += 1
        return epoch

    def run(self, num_epochs):
        return [self.run_epoch() for __ in range(num_epochs)]

    def overall_ipcs(self):
        """Whole-run per-thread IPCs over the committed (charged) epochs."""
        committed, cycles = self.proc.stats.delta_since(self._start_stats)
        if cycles == 0:
            return [0.0] * self.proc.num_threads
        return [count / cycles for count in committed]
