"""Share arithmetic over the partition knob (integer rename registers).

The hill climber moves shares by +/- Delta; these helpers keep any proposed
share vector legal: every entry at least the configured minimum and the
total exactly equal to the rename-pool size.  Also provides the candidate
grids the OFF-LINE learner sweeps.
"""


def clamp_shares(shares, total, minimum):
    """Return a legal share vector close to ``shares``.

    Entries are clamped to ``minimum``; the remaining surplus/deficit is
    then taken from (or given to) the largest entries so the vector sums to
    ``total`` exactly.
    """
    count = len(shares)
    if count == 0:
        raise ValueError("shares must be non-empty")
    if total < minimum * count:
        raise ValueError(
            "total %d cannot give %d threads the minimum %d" % (total, count, minimum)
        )
    clamped = [max(minimum, int(share)) for share in shares]
    diff = total - sum(clamped)
    if diff > 0:
        # Give the surplus to the smallest entries first (keeps the vector
        # close to what the caller asked for).
        order = sorted(range(count), key=lambda i: clamped[i])
        index = 0
        while diff > 0:
            clamped[order[index % count]] += 1
            diff -= 1
            index += 1
    elif diff < 0:
        # Take the deficit from the largest entries, never below minimum.
        while diff < 0:
            candidates = [i for i in range(count) if clamped[i] > minimum]
            target = max(candidates, key=lambda i: clamped[i])
            take = min(clamped[target] - minimum, -diff)
            clamped[target] -= take
            diff += take
    return clamped


def shift_shares(anchor, favored, delta, total, minimum):
    """The Figure 8 move: give ``favored`` Delta*(N-1) entries taken Delta
    apiece from every other thread, then re-legalise."""
    count = len(anchor)
    proposal = list(anchor)
    for index in range(count):
        if index == favored:
            proposal[index] += delta * (count - 1)
        else:
            proposal[index] -= delta
    return clamp_shares(proposal, total, minimum)


def share_grid(num_threads, total, minimum, stride):
    """All share vectors on a stride grid (the OFF-LINE search space).

    For two threads this is the paper's "every ``stride``-th partitioning of
    the integer rename registers"; for more threads it generalises to every
    composition on the grid.  Vectors are yielded deterministically.
    """
    if stride <= 0:
        raise ValueError("stride must be positive")
    if total < minimum * num_threads:
        raise ValueError("total too small for the minimum partition")

    def compositions(remaining_threads, remaining_total, prefix):
        if remaining_threads == 1:
            last = remaining_total
            if last >= minimum:
                yield prefix + [last]
            return
        lower = minimum
        upper = remaining_total - minimum * (remaining_threads - 1)
        for share in range(lower, upper + 1, stride):
            yield from compositions(
                remaining_threads - 1, remaining_total - share, prefix + [share]
            )

    yield from compositions(num_threads, total, [])


def grid_size(num_threads, total, minimum, stride):
    """Number of vectors :func:`share_grid` will yield (for sizing runs)."""
    return sum(1 for __ in share_grid(num_threads, total, minimum, stride))
