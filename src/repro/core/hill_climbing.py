"""The on-line hill-climbing resource-distribution algorithm (Figure 8).

Learning proceeds in *rounds* of ``N`` epochs (one per thread).  During a
round, each epoch's trial partitioning shifts ``Delta`` integer rename
registers from every other thread to one favored thread — sampling the
performance hill in all ``N`` directions around the current
``anchor_partition``.  At the end of a round the anchor moves toward the
best-performing direction (the positive gradient), and the next round
begins.

Faithfulness notes:

* ``Delta = 4`` by default, as in the paper.
* The paper charges a 200-cycle full-machine stall per algorithm
  invocation (its software implementation cost); so do we, via
  ``charge_stall``.
* Metrics that need ``SingleIPC_i`` learn it on-line: every
  ``sample_period`` epochs one thread runs solo for an epoch (Section 4.2);
  the sample epoch is charged to the run but not used as a learning trial.
* The IQ and ROB partitions follow the rename shares proportionally
  (Section 3.1.2) via ``PartitionRegisters.set_shares``.
"""

from repro.core.metrics import WeightedIPC
from repro.core.partition import shift_shares
from repro.pipeline.resources import equal_shares
from repro.policies.base import ResourcePolicy

DEFAULT_DELTA = 4
DEFAULT_SOFTWARE_COST = 200
DEFAULT_SAMPLE_PERIOD = 40


class HillClimbingPolicy(ResourcePolicy):
    """Figure 8: learning-based partitioning via hill-climbing.

    Parameters
    ----------
    metric:
        The performance-feedback metric (default: weighted IPC, i.e. the
        paper's HILL-WIPC).
    delta:
        Registers shifted per sampling step.
    software_cost:
        Cycles the whole machine stalls per algorithm invocation.
    sample_period:
        A SingleIPC sample epoch is inserted every this many epochs (only
        for metrics that need SingleIPC).  ``None`` disables sampling.
    """

    name = "HILL"

    def __init__(self, metric=None, delta=DEFAULT_DELTA,
                 software_cost=DEFAULT_SOFTWARE_COST,
                 sample_period=DEFAULT_SAMPLE_PERIOD):
        if delta <= 0:
            raise ValueError("delta must be positive")
        self.metric = metric if metric is not None else WeightedIPC()
        self.delta = delta
        self.software_cost = software_cost
        self.sample_period = sample_period
        self.name = "HILL-%s" % self.metric.name
        # Learning state (initialised in attach).
        self.anchor = None
        self.perf = None
        self.learn_epoch = 0
        self.single_ipc = None
        self._total = 0
        self._minimum = 0
        self._num_threads = 0
        self._sample_count = 0

    # -- lifecycle -----------------------------------------------------------

    def attach(self, proc):
        config = proc.config
        self._num_threads = proc.num_threads
        self._total = config.rename_int
        self._minimum = config.min_partition
        self.anchor = equal_shares(config, proc.num_threads)
        self.perf = [0.0] * proc.num_threads
        self.learn_epoch = 0
        self.single_ipc = [None] * proc.num_threads
        self._sample_count = 0
        self._apply_trial(proc)

    # -- sampling schedule -----------------------------------------------------

    def plan_epoch(self, proc, epoch_id):
        """Request a solo epoch every ``sample_period`` epochs (per thread in
        rotation), only for metrics that need SingleIPC."""
        if not self.metric.needs_single_ipc or not self.sample_period:
            return None
        if proc.num_threads < 2:
            return None
        if epoch_id % self.sample_period == 0:
            thread = self._sample_count % proc.num_threads
            self._sample_count += 1
            return thread
        return None

    # -- the Figure 8 algorithm ---------------------------------------------

    def on_epoch_end(self, proc, epoch):
        if epoch.kind == "solo":
            self.single_ipc[epoch.solo_thread] = epoch.ipcs[epoch.solo_thread]
            # Re-apply the current trial; the solo epoch is not a sample of
            # the hill, so the learning round continues where it left off.
            self._apply_trial(proc)
            return
        proc.charge_stall(self.software_cost)
        num = self._num_threads
        # Line 7: record the previous epoch's performance for the direction
        # it sampled.
        index = self.learn_epoch % num
        self.perf[index] = self.feedback(epoch.ipcs)
        # Lines 8-15: at the end of a round, move the anchor along the
        # positive gradient.
        if index == num - 1:
            gradient_thread = max(range(num), key=lambda i: self.perf[i])
            self.anchor = shift_shares(
                self.anchor, gradient_thread, self.delta,
                self._total, self._minimum,
            )
        # Line 16 + lines 17-21: next epoch's trial favors the next thread.
        self.learn_epoch += 1
        self._apply_trial(proc)

    def feedback(self, ipcs):
        """The learning signal: the configured metric over the epoch's IPCs,
        using dynamically sampled SingleIPC estimates (1.0 until a thread
        has been sampled)."""
        if self.metric.needs_single_ipc:
            return self.metric.value(ipcs, self.single_ipc)
        return self.metric.value(ipcs)

    def _apply_trial(self, proc):
        favored = self.learn_epoch % self._num_threads
        trial = shift_shares(
            self.anchor, favored, self.delta, self._total, self._minimum
        )
        proc.partitions.set_shares(trial)

    # -- introspection ---------------------------------------------------------

    @property
    def current_anchor(self):
        """The best partitioning found so far (a copy)."""
        return list(self.anchor)


def make_hill_policy(metric_name, **kwargs):
    """Convenience: HILL-IPC / HILL-WIPC / HILL-HWIPC by metric name."""
    from repro.core.metrics import metric_by_name

    return HillClimbingPolicy(metric=metric_by_name(metric_name), **kwargs)
