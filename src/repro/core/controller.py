"""The epoch loop.

SMT execution is divided into fixed-size epochs (Section 3.1.1, default
64K cycles).  Each epoch the controller:

1. asks the policy whether this should be a *solo* epoch (the Section 4.2
   SingleIPC sampling scheme) and restricts fetch accordingly;
2. runs the processor for one epoch;
3. computes per-thread IPCs from the committed-instruction counters; and
4. hands the policy an :class:`EpochResult` so learning policies can update
   the partition registers.

Solo epochs count toward total cycles and committed instructions — the
sampling cost is charged, as in the paper.
"""

from dataclasses import dataclass, field

DEFAULT_EPOCH_SIZE = 64 * 1024


@dataclass
class EpochResult:
    """Performance feedback for one completed epoch."""

    epoch_id: int
    kind: str                      # "normal" or "solo"
    committed: list                # per-thread committed instructions
    cycles: int                    # cycles charged to the epoch
    ipcs: list = field(default_factory=list)
    #: Integer-rename shares in force during the epoch (None: unpartitioned).
    shares: list = None
    #: Thread measured during a solo epoch.
    solo_thread: int = None

    def __post_init__(self):
        if not self.ipcs:
            cycles = max(self.cycles, 1)
            self.ipcs = [count / cycles for count in self.committed]


class EpochController:
    """Drives one processor through a sequence of epochs.

    Parameters
    ----------
    proc:
        The :class:`~repro.pipeline.processor.SMTProcessor` (with its policy
        already attached).
    epoch_size:
        Epoch length in cycles (the paper uses 64K).
    checker:
        Optional :class:`~repro.reliability.invariants.InvariantChecker`
        (duck-typed: ``before_epoch(controller, proc)`` /
        ``after_epoch(controller, proc, result)``); raises
        :class:`~repro.reliability.invariants.InvariantViolation` on the
        first broken invariant.
    injector:
        Optional :class:`~repro.reliability.faults.FaultInjector`
        (duck-typed: ``before_epoch(proc, epoch_id)``) perturbing the
        machine at epoch boundaries.
    sanitize_partitions:
        When True, illegal partition-register state (out-of-range,
        non-conserving, or malformed — e.g. from a misbehaving policy) is
        clamped and re-normalized at epoch boundaries instead of crashing
        or silently corrupting the run; repairs land in :attr:`repairs`.
    """

    def __init__(self, proc, epoch_size=DEFAULT_EPOCH_SIZE, checker=None,
                 injector=None, sanitize_partitions=False):
        if epoch_size <= 0:
            raise ValueError("epoch_size must be positive")
        self.proc = proc
        self.epoch_size = epoch_size
        self.checker = checker
        self.injector = injector
        self.sanitize_partitions = sanitize_partitions
        #: (epoch_id, stage, description) per partition repair performed.
        self.repairs = []
        self.epoch_id = 0
        self.history = []
        # Whole-run accounting baseline.  Computed from the processor's
        # cumulative stats (not by summing epoch deltas) so cycles charged
        # by ``charge_stall`` inside ``on_epoch_end`` — the hill climber's
        # software cost — are not lost between epochs.
        self._start_stats = proc.stats.copy()

    def _maybe_sanitize(self, stage):
        if not self.sanitize_partitions:
            return
        repair = self.proc.partitions.sanitize()
        if repair is not None:
            self.repairs.append((self.epoch_id, stage, repair))

    def begin_epoch(self):
        """Everything :meth:`run_epoch` does *before* the processor window:
        fault injection, sanitize, invariant pre-check, the policy's epoch
        plan and the solo-fetch restriction.  Split out (pure code motion)
        so the batched lane (:mod:`repro.experiments.batchrun`) can
        interleave many processors' windows between each controller's pre-
        and post-epoch work.  Returns ``(solo_thread, before_stats)`` to
        hand back to :meth:`finish_epoch`."""
        proc = self.proc
        if self.injector is not None:
            self.injector.before_epoch(proc, self.epoch_id)
        self._maybe_sanitize("pre-epoch")
        if self.checker is not None:
            self.checker.before_epoch(self, proc)
        solo_thread = proc.policy.plan_epoch(proc, self.epoch_id)
        if solo_thread is not None:
            proc.set_enabled({solo_thread})
        return solo_thread, proc.stats.copy()

    def finish_epoch(self, solo_thread, before):
        """Everything :meth:`run_epoch` does *after* the processor window:
        delta accounting, the policy's feedback hook, sanitize, invariant
        post-check, history.  Counterpart of :meth:`begin_epoch`."""
        proc = self.proc
        committed, cycles = proc.stats.delta_since(before)
        shares = proc.partitions.shares
        result = EpochResult(
            epoch_id=self.epoch_id,
            kind="solo" if solo_thread is not None else "normal",
            committed=committed,
            cycles=cycles,
            shares=None if shares is None else list(shares),
            solo_thread=solo_thread,
        )
        if solo_thread is not None:
            proc.enable_all()
        proc.policy.on_epoch_end(proc, result)
        self._maybe_sanitize("post-policy")
        if self.checker is not None:
            self.checker.after_epoch(self, proc, result)
        self.history.append(result)
        self.epoch_id += 1
        return result

    def run_epoch(self):
        """Execute one epoch and return its :class:`EpochResult`."""
        solo_thread, before = self.begin_epoch()
        self.proc.run(self.epoch_size)
        return self.finish_epoch(solo_thread, before)

    def run(self, num_epochs):
        """Execute ``num_epochs`` epochs; returns their results."""
        return [self.run_epoch() for __ in range(num_epochs)]

    # -- aggregate accounting ------------------------------------------------

    def totals(self):
        """Whole-run per-thread committed counts and total cycles, including
        any learning-overhead stall cycles charged between epochs."""
        return self.proc.stats.delta_since(self._start_stats)

    def overall_ipcs(self):
        """Whole-run per-thread IPCs (solo/sampling epochs included, so
        learning overhead is charged)."""
        committed, cycles = self.totals()
        if cycles == 0:
            return [0.0] * self.proc.num_threads
        return [count / cycles for count in committed]
