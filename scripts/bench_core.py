#!/usr/bin/env python
"""Build ``BENCH_core.json`` (fast vs reference core throughput) or run
the CI smoke check.

Two modes:

``python scripts/bench_core.py --out BENCH_core.json``
    Full bench matrix (see :func:`repro.experiments.profiling.bench_document`):
    MEM-heavy Figure 4 cells under both cores at the paper's memory
    latency and at the far-memory stress latency, with per-cell speedups.
    Takes a few minutes on the paper machine config.

``python scripts/bench_core.py --check``
    CI smoke: one MEM-heavy Figure 4 cell (art-mcf under FLUSH) at the
    stress latency on a trimmed window, asserting the fast core's KIPS is
    at least the reference core's.  That cell's true speedup is ~2x, so
    the >= 1.0 gate has a wide margin against CI-runner noise.  Exits 1
    with a diagnostic on failure.
"""

import argparse
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.experiments.profiling import (  # noqa: E402
    STRESS_MEM_LATENCY,
    bench_document,
)


def run_check(epochs, warmup):
    """One stress cell, both cores; fail unless fast keeps up."""
    document = bench_document(epochs=epochs, warmup=warmup,
                              cells=(("art-mcf", "FLUSH"),),
                              mem_latencies=(STRESS_MEM_LATENCY,),
                              progress=lambda line: print("[bench] " + line))
    cell = document["cells"][0]
    fast, reference = cell["fast"], cell["reference"]
    print("[bench] fast %.1f KIPS (skip ratio %.3f) vs reference %.1f KIPS"
          % (fast["kips"], fast["skip_ratio"], reference["kips"]))
    if fast["committed"] != reference["committed"] \
            or fast["cycles"] != reference["cycles"]:
        print("error: cores disagree on simulated work: fast %r "
              "vs reference %r"
              % ((fast["cycles"], fast["committed"]),
                 (reference["cycles"], reference["committed"])),
              file=sys.stderr)
        return 1
    if fast["kips"] < reference["kips"]:
        print("error: fast core slower than reference "
              "(%.1f < %.1f KIPS) on art-mcf/FLUSH @ mem=%d"
              % (fast["kips"], reference["kips"], STRESS_MEM_LATENCY),
              file=sys.stderr)
        return 1
    print("[bench] OK: fast-core speedup %.2fx" % cell["speedup"])
    return 0


def run_full(out, epochs, warmup):
    document = bench_document(epochs=epochs, warmup=warmup,
                              progress=lambda line: print("[bench] " + line))
    with open(out, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    best = max(document["cells"], key=lambda cell: cell["speedup"])
    print("[bench] %d cells written to %s; best speedup %.2fx "
          "(%s/%s @ mem=%d, skip ratio %.3f)"
          % (len(document["cells"]), out, best["speedup"],
             best["workload"], best["policy"], best["mem_latency"],
             best["fast"]["skip_ratio"]))
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=os.path.join(REPO_ROOT,
                                                      "BENCH_core.json"),
                        metavar="FILE", help="where to write the document")
    parser.add_argument("--check", action="store_true",
                        help="CI smoke: one stress cell, assert fast KIPS "
                             ">= reference KIPS")
    parser.add_argument("--epochs", type=int, default=None,
                        help="measured epochs per run (default: 2 full, "
                             "1 for --check)")
    parser.add_argument("--warmup", type=int, default=None,
                        help="warmup cycles per run (default: 10000 full, "
                             "5000 for --check)")
    args = parser.parse_args(argv)
    if args.check:
        return run_check(epochs=args.epochs or 1,
                         warmup=args.warmup if args.warmup is not None
                         else 5000)
    return run_full(args.out, epochs=args.epochs or 2,
                    warmup=args.warmup if args.warmup is not None
                    else 10000)


if __name__ == "__main__":
    sys.exit(main())
