#!/usr/bin/env python
"""Build ``BENCH_core.json`` (fast vs reference core throughput) or run
the CI smoke check.

Two modes:

``python scripts/bench_core.py --out BENCH_core.json``
    Full bench matrix (see :func:`repro.experiments.profiling.bench_document`):
    MEM-heavy Figure 4 cells under the fast and reference cores at the
    paper's memory latency and at the far-memory stress latency with
    per-cell speedups, plus the ``"grid"`` section — a fig4-style sweep
    grid timed end to end under the three lanes (per-cell hermetic fast,
    per-cell shared-cache fast, lockstep batched; see
    :func:`repro.experiments.profiling.bench_grid`).  Takes several
    minutes on the paper machine config.

``python scripts/bench_core.py --check``
    CI smoke, three legs.  First one MEM-heavy Figure 4 cell (art-mcf
    under FLUSH) at the stress latency on a trimmed window, asserting
    the fast core's KIPS is at least the reference core's — that cell's
    true speedup is ~2x, so the >= 1.0 gate has a wide margin against
    CI-runner noise.  Then a four-cell MEM2 grid through all three
    lanes, asserting the lanes stayed byte-identical (bench_grid raises
    otherwise) and the batched pack's aggregate KIPS is at least the
    hermetic fast lane's.  Finally the same grid as one *supervised*
    pack (the PackSupervisor path of ``repro sweep --batch-cells``),
    asserting supervision overhead does not surrender the pack's
    throughput win over hermetic fast.  Exits 1 with a diagnostic on
    failure.
"""

import argparse
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.experiments.profiling import (  # noqa: E402
    STRESS_MEM_LATENCY,
    bench_document,
    bench_grid,
)


def run_check(epochs, warmup):
    """One stress cell, both cores, then a small three-lane grid."""
    document = bench_document(epochs=epochs, warmup=warmup,
                              cells=(("art-mcf", "FLUSH"),),
                              mem_latencies=(STRESS_MEM_LATENCY,),
                              progress=lambda line: print("[bench] " + line),
                              grid=False)
    cell = document["cells"][0]
    fast, reference = cell["fast"], cell["reference"]
    print("[bench] fast %.1f KIPS (skip ratio %.3f) vs reference %.1f KIPS"
          % (fast["kips"], fast["skip_ratio"], reference["kips"]))
    if fast["committed"] != reference["committed"] \
            or fast["cycles"] != reference["cycles"]:
        print("error: cores disagree on simulated work: fast %r "
              "vs reference %r"
              % ((fast["cycles"], fast["committed"]),
                 (reference["cycles"], reference["committed"])),
              file=sys.stderr)
        return 1
    if fast["kips"] < reference["kips"]:
        print("error: fast core slower than reference "
              "(%.1f < %.1f KIPS) on art-mcf/FLUSH @ mem=%d"
              % (fast["kips"], reference["kips"], STRESS_MEM_LATENCY),
              file=sys.stderr)
        return 1
    print("[bench] OK: fast-core speedup %.2fx" % cell["speedup"])
    # Leg two: the batched lane on a small MEM-bound grid.  bench_grid
    # raises if the lanes' results diverge, so reaching the KIPS gate
    # already proves byte-identity.
    grid = bench_grid(epochs=epochs, warmup=warmup, groups=("MEM2",),
                      policies=("ICOUNT", "FLUSH"), workloads_per_group=2,
                      progress=lambda line: print("[bench] " + line))
    fast_lane, batched = grid["lanes"]["fast"], grid["lanes"]["batched"]
    print("[bench] grid (%d cells): fast %.1f KIPS vs batched %.1f KIPS"
          % (grid["cells"], fast_lane["kips"], batched["kips"]))
    if batched["kips"] < fast_lane["kips"]:
        print("error: batched lane slower than hermetic fast "
              "(%.1f < %.1f aggregate KIPS) on the MEM2 smoke grid"
              % (batched["kips"], fast_lane["kips"]), file=sys.stderr)
        return 1
    print("[bench] OK: batched-lane speedup %.2fx"
          % batched["speedup_vs_fast"])
    # Leg three: the same grid through the supervised batched lane (the
    # PackSupervisor path `repro sweep --batch-cells` now always takes).
    # Supervision must not eat the pack's throughput win.
    supervised = supervised_batched_kips(epochs=epochs, warmup=warmup)
    print("[bench] grid (%d cells): supervised-batched %.1f KIPS"
          % (grid["cells"], supervised["kips"]))
    if supervised["committed"] != batched["committed"]:
        print("error: supervised-batched lane disagrees on simulated "
              "work: %d committed vs %d"
              % (supervised["committed"], batched["committed"]),
              file=sys.stderr)
        return 1
    if supervised["kips"] < fast_lane["kips"]:
        print("error: supervised-batched lane slower than hermetic fast "
              "(%.1f < %.1f aggregate KIPS) on the MEM2 smoke grid"
              % (supervised["kips"], fast_lane["kips"]), file=sys.stderr)
        return 1
    print("[bench] OK: supervised-batched keeps the pack win "
          "(%.2fx the hermetic fast lane)"
          % (supervised["kips"] / fast_lane["kips"]))
    return 0


def supervised_batched_kips(epochs, warmup):
    """Aggregate KIPS for the CI grid under a supervised one-pack sweep.

    Mirrors bench_grid's batched lane, but through SweepEngine with
    supervision on (jobs=1, no timeout: the in-process PackSupervisor
    path), cache off so every cell simulates.
    """
    import time

    from repro.experiments.parallel import SweepEngine, grid_cells
    from repro.experiments.profiling import _bench_scale
    from repro.experiments.runner import ExperimentScale, clear_solo_cache
    from repro.reliability.supervisor import Supervision

    base = ExperimentScale.full()
    scale = _bench_scale(base, base.config.mem_latency, epochs, warmup)
    cells = grid_cells(groups=("MEM2",), policies=("ICOUNT", "FLUSH"),
                       workloads_per_group=2)
    engine = SweepEngine(scale, jobs=1, use_cache=False,
                         supervision=Supervision(seed=scale.seed),
                         batch_cells=len(cells))
    clear_solo_cache()
    start = time.perf_counter()  # repro: allow-nondeterminism[ND101] (throughput measurement, not results)
    results = engine.run_cells(cells)
    wall = time.perf_counter() - start  # repro: allow-nondeterminism[ND101] (throughput measurement, not results)
    clear_solo_cache()
    committed = sum(sum(result.committed) for result in results)
    return {"wall_s": wall, "committed": committed,
            "kips": committed / 1000.0 / wall if wall > 0 else 0.0}


def run_full(out, epochs, warmup):
    document = bench_document(epochs=epochs, warmup=warmup,
                              progress=lambda line: print("[bench] " + line))
    with open(out, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    best = max(document["cells"], key=lambda cell: cell["speedup"])
    print("[bench] %d cells written to %s; best speedup %.2fx "
          "(%s/%s @ mem=%d, skip ratio %.3f)"
          % (len(document["cells"]), out, best["speedup"],
             best["workload"], best["policy"], best["mem_latency"],
             best["fast"]["skip_ratio"]))
    grid = document["grid"]
    print("[bench] grid (%d cells @ mem=%d): batched %.2fx, "
          "fast-serial %.2fx over hermetic fast"
          % (grid["cells"], grid["mem_latency"],
             grid["lanes"]["batched"]["speedup_vs_fast"],
             grid["lanes"]["fast-serial"]["speedup_vs_fast"]))
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=os.path.join(REPO_ROOT,
                                                      "BENCH_core.json"),
                        metavar="FILE", help="where to write the document")
    parser.add_argument("--check", action="store_true",
                        help="CI smoke: one stress cell, assert fast KIPS "
                             ">= reference KIPS")
    parser.add_argument("--epochs", type=int, default=None,
                        help="measured epochs per run (default: 2 full, "
                             "1 for --check)")
    parser.add_argument("--warmup", type=int, default=None,
                        help="warmup cycles per run (default: 10000 full, "
                             "5000 for --check)")
    args = parser.parse_args(argv)
    if args.check:
        return run_check(epochs=args.epochs or 1,
                         warmup=args.warmup if args.warmup is not None
                         else 5000)
    return run_full(args.out, epochs=args.epochs or 2,
                    warmup=args.warmup if args.warmup is not None
                    else 10000)


if __name__ == "__main__":
    sys.exit(main())
