"""Infrastructure micro-benchmarks (real pytest-benchmark timing, multiple
rounds): simulator throughput, checkpoint cost, generator rate.

These are the numbers that justify the EXPERIMENTS.md scaling table — a
pure-Python cycle simulator runs ~10^5 cycles/second, which is why the
harness cannot run the paper's 1B-instruction windows.
"""

import pytest

from repro.pipeline.checkpoint import Checkpoint
from repro.pipeline.config import SMTConfig
from repro.pipeline.processor import SMTProcessor
from repro.policies.icount import ICountPolicy
from repro.workloads.generator import SyntheticStream
from repro.workloads.mixes import get_workload
from repro.workloads.spec2000 import get_profile


def warm_proc():
    workload = get_workload("art-gzip")
    proc = SMTProcessor(SMTConfig.fast(), workload.profiles, seed=0,
                        policy=ICountPolicy())
    proc.run(6000)
    return proc


def test_simulator_cycle_throughput(benchmark):
    proc = warm_proc()
    cycles = 4096

    def run_epoch():
        proc.run(cycles)

    benchmark.pedantic(run_epoch, rounds=5, iterations=1)
    assert proc.stats.committed[0] > 0


def test_checkpoint_save(benchmark):
    proc = warm_proc()
    checkpoint = benchmark.pedantic(lambda: Checkpoint(proc), rounds=5,
                                    iterations=1)
    assert checkpoint.size_bytes > 1000


def test_checkpoint_materialize(benchmark):
    proc = warm_proc()
    checkpoint = Checkpoint(proc)
    clone = benchmark.pedantic(checkpoint.materialize, rounds=5, iterations=1)
    assert clone.cycle == proc.cycle


def test_generator_instruction_rate(benchmark):
    stream = SyntheticStream(get_profile("art"), 0, seed=0)

    def generate():
        for __ in range(10000):
            stream.next_instruction()

    benchmark.pedantic(generate, rounds=5, iterations=1)
    assert stream.seq >= 50000
