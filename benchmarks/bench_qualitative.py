"""Section 3.3.2 — qualitative sources of OFF-LINE's gains, quantified.

Two claims:

* *Cache-miss clustering*: memory-intensive threads with clustered
  independent misses gain substantially from a deeper window (so learning
  that grows their partition wins where FLUSH/DCRA hold back).
* *Compute-intensive low-ILP threads*: some rarely-missing threads gain
  almost nothing from a deep window (so learning that shrinks their
  partition frees resources that indicator policies would waste on them).
"""

from benchmarks.conftest import print_header, run_once
from repro.analysis.qualitative import classify_threads
from repro.experiments.report import format_table
from repro.workloads.spec2000 import PROFILES

#: Benchmarks exercising both cases: bursty MEM threads, serial chasers,
#: wide-ILP and chain-limited compute threads.
CANDIDATES = ("art", "swim", "twolf", "mcf", "lucas", "gap", "gzip",
              "crafty", "perlbmk", "eon")


def test_qualitative_cases(benchmark, scale):
    profiles = [PROFILES[name] for name in CANDIDATES]

    def experiment():
        return classify_threads(profiles, scale.config, seed=scale.seed,
                                warmup=scale.warmup,
                                window=scale.epoch_size * 4)

    buckets = run_once(benchmark, experiment)

    print_header("Section 3.3.2: window utility per thread")
    rows = []
    for bucket, utilities in buckets.items():
        for utility in utilities:
            rows.append([
                utility.benchmark, bucket,
                utility.shallow_ipc, utility.deep_ipc,
                utility.gain, utility.l2_misses_per_kilo,
            ])
    print(format_table(
        ["benchmark", "case", "IPC shallow", "IPC deep", "gain",
         "L2 MPKI"], rows,
    ))

    by_name = {}
    for utilities in buckets.values():
        for utility in utilities:
            by_name[utility.benchmark] = utility
    # Shape: the clustered-miss MEM threads gain far more from window
    # depth than the serial chaser.
    assert by_name["art"].gain > by_name["lucas"].gain
    assert by_name["swim"].gain > 1.15
    # Shape: at least one rarely-missing compute thread is window-
    # insensitive (the "low-ILP compute" case exists in the suite).
    compute = [utility for utility in by_name.values()
               if not utility.is_memory_intensive]
    assert any(utility.gain < 1.4 for utility in compute)
    # Shape: clustering bucket is populated by MEM benchmarks.
    for utility in buckets["clustering"]:
        assert utility.is_memory_intensive
