"""Shared fixtures for the per-figure benchmark harness.

Scale selection: set ``REPRO_BENCH_SCALE`` to ``smoke``, ``bench``
(default) or ``full``.  The reported numbers in EXPERIMENTS.md come from
the default ``bench`` scale; ``full`` approximates the paper's scale and
takes hours.
"""

import os

import pytest

from repro.experiments.runner import ExperimentScale

_SCALES = {
    "smoke": ExperimentScale.smoke,
    "bench": ExperimentScale.bench,
    "full": ExperimentScale.full,
}


def current_scale():
    name = os.environ.get("REPRO_BENCH_SCALE", "bench").lower()
    if name not in _SCALES:
        raise ValueError(
            "REPRO_BENCH_SCALE must be one of %s" % (sorted(_SCALES),))
    scale = _SCALES[name]()
    if name == "bench":
        # The bench harness covers every figure; bound per-figure cost by
        # evaluating a per-group subset of Table 3 and a slightly shorter
        # window (EXPERIMENTS.md notes both).
        scale = scale.with_overrides(workloads_per_group=3, epochs=28)
    return scale


@pytest.fixture(scope="session")
def scale():
    return current_scale()


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)


def print_header(title):
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
