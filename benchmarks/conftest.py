"""Shared fixtures for the per-figure benchmark harness.

Scale selection: set ``REPRO_BENCH_SCALE`` to ``smoke``, ``bench``
(default) or ``full``.  The reported numbers in EXPERIMENTS.md come from
the default ``bench`` scale; ``full`` approximates the paper's scale.

Parallelism and caching: ``REPRO_BENCH_JOBS`` sets the sweep-engine
worker count for the figure grids (default: 1 at smoke/bench, all cores
at full — the full-scale harness is only tractable through the parallel
sweep layer).  Cell results are memoized in the content-addressed cache
at ``$REPRO_CACHE_DIR`` (default ``~/.cache/repro-sweeps``), so a
re-run after an edit only re-simulates invalidated cells; set
``REPRO_BENCH_CACHE=0`` to disable.  See docs/PARALLEL.md.
"""

import os

import pytest

from repro.experiments.runner import ExperimentScale

_SCALES = {
    "smoke": ExperimentScale.smoke,
    "bench": ExperimentScale.bench,
    "full": ExperimentScale.full,
}


def current_scale():
    name = os.environ.get("REPRO_BENCH_SCALE", "bench").lower()
    if name not in _SCALES:
        raise ValueError(
            "REPRO_BENCH_SCALE must be one of %s" % (sorted(_SCALES),))
    scale = _SCALES[name]()
    if name == "bench":
        # The bench harness covers every figure; bound per-figure cost by
        # evaluating a per-group subset of Table 3 and a slightly shorter
        # window (EXPERIMENTS.md notes both).
        scale = scale.with_overrides(workloads_per_group=3, epochs=28)
    return scale


def current_jobs():
    """Sweep-engine worker count for the figure grids."""
    env = os.environ.get("REPRO_BENCH_JOBS")
    if env:
        jobs = int(env)
        if jobs < 1:
            raise ValueError("REPRO_BENCH_JOBS must be >= 1")
        return jobs
    if os.environ.get("REPRO_BENCH_SCALE", "bench").lower() == "full":
        return os.cpu_count() or 1
    return 1


@pytest.fixture(scope="session")
def scale():
    return current_scale()


@pytest.fixture(scope="session")
def engine(scale):
    """Session-wide sweep engine: the policy-grid figures fan their
    (workload x policy) cells out over it and share one result cache."""
    from repro.experiments.parallel import SweepEngine

    return SweepEngine(
        scale,
        jobs=current_jobs(),
        use_cache=os.environ.get("REPRO_BENCH_CACHE", "1") != "0",
    )


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)


def print_header(title):
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
