"""Table 2 — per-benchmark characteristics ("Rsc" and "Freq").

Re-derives, on the scaled machine, the integer-rename-register requirement
(95% of stand-alone IPC) and the phase-variation frequency for every
Table 2 benchmark.  Absolute register counts differ from the paper's
256-register machine; the reproduced claims are the *orderings*: MEM
burst benchmarks are resource-hungry, serial chasers are not, and the
High/Low/No variation labels match.
"""

from benchmarks.conftest import print_header, run_once
from repro.experiments.report import format_table
from repro.experiments.tables import table2_characteristics


def test_table2_characteristics(benchmark, scale):
    result = run_once(benchmark, table2_characteristics, scale, epochs=6)

    print_header("Table 2: benchmark characteristics (measured on the "
                 "scaled machine)")
    print(format_table(
        ["benchmark", "type", "Rsc (paper)", "Rsc (measured)",
         "Freq (paper)", "Freq (measured)"],
        [[row["name"], row["type"], row["paper_rsc"], row["measured_rsc"],
          row["paper_freq"], row["measured_freq"]] for row in result],
    ))

    by_name = {row["name"]: row for row in result}
    # Shape: the bursty MEM benchmarks demand more than the small-appetite
    # compute benchmark, and at least as much (within one measurement grid
    # step) as the serial chaser, whose shallow curve inflates its
    # estimate.
    step = max(8, scale.config.rename_int // 8)
    assert by_name["art"]["measured_rsc"] >= by_name["perlbmk"]["measured_rsc"]
    assert by_name["swim"]["measured_rsc"] >= by_name["perlbmk"]["measured_rsc"]
    assert by_name["art"]["measured_rsc"] >= \
        by_name["lucas"]["measured_rsc"] - step
    assert by_name["swim"]["measured_rsc"] >= \
        by_name["lucas"]["measured_rsc"] - step
    # Shape: compute-bound "No"-variation benchmarks measure as mostly
    # stable.  (Memory-bound ones sit on shallow IPC-vs-cap curves where
    # the per-epoch requirement estimate flips between grid steps, so the
    # paper's No labels for them are not reliably recoverable at this
    # scale — see EXPERIMENTS.md.)
    no_ilp_rows = [row for row in result
                   if row["paper_freq"] == "No" and "ILP" in row["type"]]
    stable = sum(1 for row in no_ilp_rows if row["measured_freq"] == "No")
    assert stable >= len(no_ilp_rows) // 2
    # Shape: every High-variation profile shows some measured variation.
    high_rows = [row for row in result if row["paper_freq"] == "High"]
    varying = sum(1 for row in high_rows if row["measured_freq"] != "No")
    assert varying >= len(high_rows) // 2
