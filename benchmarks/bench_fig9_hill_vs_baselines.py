"""Figure 9 — hill-climbing vs ICOUNT, FLUSH and DCRA (weighted IPC).

The headline on-line result.  Paper: HILL-WIPC gains 12.4% over ICOUNT,
11.3% over FLUSH and 2.4% over DCRA across 42 workloads.  Reproduced
shape: HILL beats ICOUNT and FLUSH on average (and in most workloads) and
is within a few percent of DCRA — see EXPERIMENTS.md for the measured
deltas and the one deviation (the sign of the small HILL-DCRA gap).
"""

from benchmarks.conftest import print_header, run_once
from repro.experiments.figures import fig9_hill_vs_baselines
from repro.experiments.report import format_table


def test_fig9_hill_vs_baselines(benchmark, scale, engine):
    # The policy grid fans out over the sweep engine's worker pool and
    # result cache (REPRO_BENCH_JOBS / REPRO_CACHE_DIR).
    result = run_once(benchmark, fig9_hill_vs_baselines, scale,
                      engine=engine)

    print_header("Figure 9: HILL-WIPC vs baselines (weighted IPC)")
    print(format_table(
        ["workload", "group", "ICOUNT", "FLUSH", "DCRA", "HILL"],
        [[name, group, values["ICOUNT"], values["FLUSH"], values["DCRA"],
          values["HILL"]] for name, group, values in result["rows"]],
    ))
    print("\naverage HILL gain: " + "  ".join(
        "%s %+.1f%%" % (baseline, gain)
        for baseline, gain in result["gains"].items()))
    print("\nper-group HILL gains:")
    for group, gains in sorted(result["group_gains"].items()):
        print("  %s: %s" % (group, "  ".join(
            "%s %+.1f%%" % (baseline, gain)
            for baseline, gain in gains.items())))

    gains = result["gains"]
    # Shape: HILL beats ICOUNT on average and is at worst neck-and-neck
    # with FLUSH (our FLUSH is stronger than the paper's — see
    # EXPERIMENTS.md deviations).
    assert gains["ICOUNT"] > 0
    assert gains["FLUSH"] > -2.0
    # Shape: HILL is competitive with DCRA (within a few percent).
    assert gains["DCRA"] > -6.0
    # Shape: HILL wins against ICOUNT and FLUSH in most workloads.
    wins = sum(
        1 for __, __, values in result["rows"]
        if values["HILL"] >= min(values["ICOUNT"], values["FLUSH"])
    )
    assert wins >= 0.8 * len(result["rows"])
