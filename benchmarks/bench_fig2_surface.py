"""Figure 2 — IPC of mesa/vortex/fma3d vs the 3-thread resource split.

Sweeps the (mesa, vortex) share grid (fma3d takes the remainder) over one
interval and reports the surface.  Reproduced shape: the surface is
hill-shaped — a single dominant peak region, with IPC falling off toward
the starved corners (the paper's motivation for gradient-guided learning).
"""

from benchmarks.conftest import print_header, run_once
from repro.experiments.figures import fig2_surface


def test_fig2_distribution_surface(benchmark, scale):
    surface = run_once(benchmark, fig2_surface, scale)

    print_header("Figure 2: IPC over the mesa/vortex/fma3d distribution "
                 "space (rows: mesa share, cols: vortex share)")
    header = "mesa\\vortex " + " ".join(
        "%6d" % share for share in surface.share_axis)
    print(header)
    for share0, row in surface.rows():
        cells = {share1: value for share1, value in row}
        print("%11d " % share0 + " ".join(
            "%6.2f" % cells[share] if share in cells else "     -"
            for share in surface.share_axis))
    print("peak: shares=%s IPC=%.3f" % (surface.peak_shares, surface.peak_ipc))

    values = surface.ipc
    assert surface.peak_ipc > 0
    # Shape: starved corners are clearly below the peak.
    minimum = scale.config.min_partition
    corner_keys = [key for key in values
                   if key[0] == min(surface.share_axis)
                   and key[1] == min(surface.share_axis)]
    assert corner_keys
    corner = values[corner_keys[0]]
    assert corner < 0.9 * surface.peak_ipc
    # Shape: the peak is interior-ish, not at a fully starved corner.
    assert surface.peak_shares[0] > minimum or surface.peak_shares[1] > minimum
