"""Figure 12 — time-varying behaviours (TS/SS/TL/SL/JL).

Runs the synchronized HILL-vs-OFF-LINE comparison per workload, classifies
the OFF-LINE best-partition series into the paper's five behaviours, and
reports HILL's fraction of OFF-LINE per behaviour.  Paper result: HILL
tracks OFF-LINE closely in TS/SS workloads and loses ground in TL/SL/JL.
Reproduced shape: every workload classifies into one of the five cases,
and HILL's fraction is highest among the stable classes present.
"""

from benchmarks.conftest import print_header, run_once
from repro.experiments.figures import fig12_behaviors
from repro.experiments.report import (
    format_table,
    mean,
    render_partition_heatmap,
)
from repro.experiments.runner import select_workloads


def test_fig12_behaviors(benchmark, scale):
    # Behaviour classification stabilises within ~20 epochs; bound the
    # synchronized-replay cost accordingly.
    sized = scale.with_overrides(epochs=min(scale.epochs, 20))
    workloads = select_workloads(("MIX2", "MEM2"), sized)
    result = run_once(benchmark, fig12_behaviors, sized, workloads=workloads)

    print_header("Figure 12: time-varying behaviour per workload")
    print(format_table(
        ["workload", "behavior", "HILL/OFF-LINE", "best-share trajectory"],
        [[row["workload"], row["behavior"], "%.3f" % row["hill_fraction"],
          " ".join("%d" % share for share in row["offline_best_shares"][:12])]
         for row in result["rows"]],
    ))

    # One representative gray-scale panel (the Figure 12 view).
    panel = result["rows"][0]
    print("\n%s (%s):" % (panel["workload"], panel["behavior"]))
    print(render_partition_heatmap(panel["offline_epochs"],
                                   panel["hill_shares"], width=1))

    assert all(len(row["offline_best_shares"]) == sized.epochs
               for row in result["rows"])
    classes = {row["behavior"] for row in result["rows"]}
    assert classes <= {"TS", "SS", "TL", "SL", "JL"}
    # Shape: on-line learning recovers most of ideal in every class, and
    # stable classes (TS/SS) do at least as well as limited ones on
    # average when both are present.
    fractions = [row["hill_fraction"] for row in result["rows"]]
    assert all(fraction >= 0.55 for fraction in fractions)
    stable = [row["hill_fraction"] for row in result["rows"]
              if row["behavior"] in ("TS", "SS")]
    limited = [row["hill_fraction"] for row in result["rows"]
               if row["behavior"] in ("TL", "SL", "JL")]
    if stable and limited:
        assert mean(stable) >= mean(limited) - 0.10
