"""Figure 4 — limit study: OFF-LINE exhaustive learning vs ICOUNT, FLUSH
and DCRA on the 2-thread workloads (weighted IPC).

Paper result: OFF-LINE gains 19.2% over ICOUNT, 18.0% over FLUSH and 7.6%
over DCRA on average, with the largest headroom in MEM workloads.
Reproduced shape: OFF-LINE's average gain over each baseline is positive,
and the MEM gain over FLUSH is the largest of the FLUSH gains.
"""

from benchmarks.conftest import print_header, run_once
from repro.experiments.figures import fig4_offline_limit
from repro.experiments.report import format_table, mean, pct_gain


def test_fig4_offline_limit(benchmark, scale, engine):
    # Baseline cells go through the sweep engine (pool + result cache);
    # the OFF-LINE learner itself stays in-process.
    result = run_once(benchmark, fig4_offline_limit, scale, engine=engine)

    print_header("Figure 4: OFF-LINE vs ICOUNT/FLUSH/DCRA (weighted IPC)")
    print(format_table(
        ["workload", "group", "ICOUNT", "FLUSH", "DCRA", "OFF-LINE"],
        [[name, group, values["ICOUNT"], values["FLUSH"], values["DCRA"],
          values["OFF-LINE"]] for name, group, values in result["rows"]],
    ))
    print("\naverage OFF-LINE gain: " + "  ".join(
        "%s %+.1f%%" % (baseline, gain)
        for baseline, gain in result["gains"].items()))

    gains = result["gains"]
    # Shape: learning headroom exists over every baseline.
    assert gains["ICOUNT"] > 0
    assert gains["FLUSH"] > 0
    assert gains["DCRA"] > -4.0  # near-or-above the strongest baseline
    # Shape: per-workload, OFF-LINE beats ICOUNT and FLUSH almost always.
    wins = sum(
        1 for __, __, values in result["rows"]
        if values["OFF-LINE"] >= values["ICOUNT"]
        and values["OFF-LINE"] >= values["FLUSH"]
    )
    assert wins >= 0.6 * len(result["rows"])
    # Shape: MEM2 headroom over FLUSH is large (paper: 39.4%).
    mem_gain_flush = mean([
        pct_gain(values["OFF-LINE"], values["FLUSH"])
        for __, group, values in result["rows"] if group == "MEM2"
    ])
    all_gain_flush = gains["FLUSH"]
    assert mem_gain_flush >= all_gain_flush - 2.0
