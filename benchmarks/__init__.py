"""Benchmark harness: one module per table/figure of the paper.

Run with ``pytest benchmarks/ --benchmark-only``; see conftest.py for the
REPRO_BENCH_SCALE knob and EXPERIMENTS.md for the recorded numbers.
"""
