"""Figure 5 — synchronized time-varying performance on art-mcf.

Every policy replays each epoch from the OFF-LINE learner's checkpoint, so
per-epoch weighted IPCs are directly comparable.  Paper result: OFF-LINE
outperforms ICOUNT and FLUSH in 100% of epochs and DCRA in 97.2%.
Reproduced shape: OFF-LINE wins a clear majority of epochs against each
baseline.
"""

from benchmarks.conftest import print_header, run_once
from repro.experiments.figures import fig5_sync_timeline
from repro.experiments.report import format_series


def test_fig5_synchronized_timeline(benchmark, scale):
    result = run_once(benchmark, fig5_sync_timeline, scale)

    timeline = result["timeline"]
    print_header("Figure 5: synchronized per-epoch weighted IPC (art-mcf)")
    print(format_series(timeline.series))
    print("\nOFF-LINE epoch win rates: " + "  ".join(
        "%s %.0f%%" % (name, 100 * rate)
        for name, rate in result["offline_win_rates"].items()))

    rates = result["offline_win_rates"]
    assert rates["ICOUNT"] >= 0.5
    assert rates["FLUSH"] >= 0.5
    assert rates["DCRA"] >= 0.25
    assert len(timeline.series["OFF-LINE"]) == scale.epochs
