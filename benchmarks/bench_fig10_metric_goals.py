"""Figure 10 — metric-matched learning.

Hill-climbing is run with each of the three feedback metrics and every run
is evaluated under all three metrics.  Paper result: hill-climbing does
best under a metric when learning with that same metric (5.9% matched-vs-
mismatched advantage), a capability the fixed baselines lack.  Reproduced
shape: for each evaluation metric, the matched learner is at least as good
as the average mismatched learner.
"""

from benchmarks.conftest import print_header, run_once
from repro.experiments.figures import fig10_metric_goals
from repro.experiments.report import format_table

MATCHED = {
    "avg_ipc": "HILL-IPC",
    "weighted_ipc": "HILL-WIPC",
    "harmonic_weighted_ipc": "HILL-HWIPC",
}


def test_fig10_metric_goals(benchmark, scale, engine):
    # The full cross-product (6 policies x workloads x 3 metrics) is the
    # most expensive figure; evaluate one workload per group, fanning the
    # policy grid out over the sweep engine.
    sized = scale.with_overrides(workloads_per_group=1)
    result = run_once(benchmark, fig10_metric_goals, sized, engine=engine)

    summary = result["summary"]
    policies = sorted(next(iter(summary.values())))
    print_header("Figure 10: mean score by (policy x evaluation metric)")
    print(format_table(
        ["policy"] + list(summary),
        [[policy] + [summary[metric][policy] for metric in summary]
         for policy in policies],
    ))
    print("\nmatched-over-best-mismatched ratio: %.3f"
          % result["matched_over_mismatched"])

    hill_policies = set(MATCHED.values())
    for metric_name, matched_policy in MATCHED.items():
        matched = summary[metric_name][matched_policy]
        mismatched = [summary[metric_name][policy]
                      for policy in hill_policies - {matched_policy}]
        average_mismatched = sum(mismatched) / len(mismatched)
        # Shape: learning toward the evaluated goal never loses to the
        # average mismatched learner by more than noise.
        assert matched >= 0.95 * average_mismatched, metric_name
    # Shape: hill-climbing beats ICOUNT and FLUSH under every metric.
    for metric_name, matched_policy in MATCHED.items():
        assert summary[metric_name][matched_policy] >= \
            0.92 * summary[metric_name]["FLUSH"]
