"""Table 3 — the 42 multiprogrammed workloads.

Reports every workload with its group and summed resource requirement, and
asserts the Table 3 structure (6 groups x 7 workloads, paper Rsc sums).
"""

from benchmarks.conftest import print_header, run_once
from repro.experiments.report import format_table
from repro.experiments.tables import table3_workloads


def test_table3_workloads(benchmark):
    rows = run_once(benchmark, table3_workloads)

    print_header("Table 3: multiprogrammed workloads")
    print(format_table(
        ["workload", "group", "threads", "Rsc sum", "large?"],
        [[row["name"], row["group"], row["threads"], row["rsc_sum"],
          "LG" if row["large"] else "SM"] for row in rows],
    ))

    assert len(rows) == 42
    groups = {}
    for row in rows:
        groups.setdefault(row["group"], []).append(row)
    assert set(groups) == {"ILP2", "MIX2", "MEM2", "ILP4", "MIX4", "MEM4"}
    assert all(len(members) == 7 for members in groups.values())
    by_name = {row["name"]: row for row in rows}
    # Paper's Table 3 Rsc sums (spot checks).
    assert by_name["apsi-eon"]["rsc_sum"] == 209
    assert by_name["art-mcf"]["rsc_sum"] == 273
    assert by_name["swim-mcf"]["rsc_sum"] == 310
    # MEM groups should skew large, ILP2 small.
    assert sum(1 for row in groups["MEM2"] if row["large"]) >= 5
    assert sum(1 for row in groups["ILP2"] if not row["large"]) >= 4
