"""Core-throughput micro-benchmarks: fast vs reference run loop.

Times the same epoch window under both cores on a MEM-heavy Figure 4 cell
(art-mcf), where long main-memory stalls give the quiescence detector
something to skip.  The headroom scales with memory latency — see
``BENCH_core.json`` (built by ``scripts/bench_core.py``) for the full
latency sweep; these benchmarks pin the two ends of it.
"""

from dataclasses import replace

import pytest

from repro.experiments.runner import make_processor
from repro.experiments.parallel import policy_factory
from repro.pipeline.fastpath import forced_core
from repro.pipeline.profile import CoreProfile
from repro.workloads.mixes import get_workload

CORES = ("fast", "reference")

#: Far-memory latency (cycles) for the stress benchmarks; matches
#: :data:`repro.experiments.profiling.STRESS_MEM_LATENCY`.
FAR_MEM = 2000


def _warm_proc(scale, mem_latency=None):
    if mem_latency is not None:
        scale = scale.with_overrides(
            config=replace(scale.config, mem_latency=mem_latency))
    workload = get_workload("art-mcf")
    policy = policy_factory("FLUSH", scale)()
    return make_processor(workload, policy, scale, warm=True)


@pytest.mark.parametrize("core", CORES)
def test_core_throughput_paper_latency(benchmark, scale, core):
    proc = _warm_proc(scale)
    cycles = scale.epoch_size

    def run_epoch():
        with forced_core(core):
            proc.run(cycles)

    benchmark.pedantic(run_epoch, rounds=5, iterations=1)
    assert proc.stats.total_committed() > 0


@pytest.mark.parametrize("core", CORES)
def test_core_throughput_far_memory(benchmark, scale, core):
    proc = _warm_proc(scale, mem_latency=FAR_MEM)
    cycles = scale.epoch_size

    def run_epoch():
        with forced_core(core):
            proc.run(cycles)

    benchmark.pedantic(run_epoch, rounds=5, iterations=1)
    assert proc.stats.total_committed() > 0


def test_fast_core_skip_coverage(scale):
    """Not a timing benchmark: records how much of the far-memory window
    the fast core skipped (the mechanism behind the speedup above)."""
    proc = _warm_proc(scale, mem_latency=FAR_MEM)
    proc.profile = profile = CoreProfile()
    with forced_core("fast"):
        proc.run(scale.epoch_size)
    assert profile.total_cycles == scale.epoch_size
    assert profile.skipped_cycles > 0
