"""Ablations over the design choices DESIGN.md calls out.

* Epoch size (Section 3.1.1: the paper settled on 64K cycles after a
  sensitivity study) — total simulated cycles held constant.
* Delta (Figure 8 uses 4).
* SingleIPC sampling period (Section 4.2 uses 40).
* Software-cost stall (200 cycles per invocation in the paper).
* OFF-LINE search stride (search resolution vs measured ideal).
"""

from benchmarks.conftest import print_header, run_once
from repro.experiments import ablations
from repro.experiments.report import format_table
from repro.workloads.mixes import get_workload

WORKLOAD = "art-mcf"


def test_ablation_epoch_size(benchmark, scale):
    workload = get_workload(WORKLOAD)
    rows = run_once(benchmark, ablations.epoch_size_sweep, workload, scale,
                    epoch_sizes=(1024, 2048, 4096, 8192))
    print_header("Ablation: hill-climbing weighted IPC vs epoch size (%s)"
                 % WORKLOAD)
    print(format_table(["epoch size (cycles)", "weighted IPC"], rows))
    values = [value for __, value in rows]
    # Shape: mid-range epochs are competitive; no setting collapses.
    assert max(values) > 0
    assert min(values) >= 0.6 * max(values)


def test_ablation_delta(benchmark, scale):
    workload = get_workload(WORKLOAD)
    rows = run_once(benchmark, ablations.delta_sweep, workload, scale,
                    deltas=(2, 4, 8, 16))
    print_header("Ablation: hill-climbing weighted IPC vs Delta (%s)"
                 % WORKLOAD)
    print(format_table(["Delta (registers)", "weighted IPC"], rows))
    values = dict(rows)
    # Shape: the paper's Delta=4 region is competitive with the best.
    assert values[4] >= 0.90 * max(values.values())


def test_ablation_sample_period(benchmark, scale):
    workload = get_workload(WORKLOAD)
    rows = run_once(benchmark, ablations.sample_period_sweep, workload, scale,
                    periods=(5, 10, 20, None))
    print_header("Ablation: weighted IPC vs SingleIPC sampling period (%s); "
                 "None disables sampling" % WORKLOAD)
    print(format_table(["period (epochs)", "weighted IPC"],
                       [[str(period), value] for period, value in rows]))
    values = {period: value for period, value in rows}
    # Shape: sampling every 5 epochs costs real throughput vs sparse
    # sampling (solo epochs are charged).
    assert values[5] <= values[20] + 0.03


def test_ablation_software_cost(benchmark, scale):
    workload = get_workload(WORKLOAD)
    rows = run_once(benchmark, ablations.software_cost_sweep, workload, scale,
                    costs=(0, 200, 2000))
    print_header("Ablation: weighted IPC vs per-invocation software stall "
                 "(%s)" % WORKLOAD)
    print(format_table(["stall (cycles)", "weighted IPC"], rows))
    values = dict(rows)
    # Shape: the paper's 200-cycle stall is almost free at 64K-equivalent
    # proportions, while an exaggerated stall visibly costs.
    assert values[200] >= values[2000] - 0.01


def test_ablation_offline_stride(benchmark, scale):
    workload = get_workload(WORKLOAD)
    sized = scale.with_overrides(epochs=min(scale.epochs, 12))
    rows = run_once(benchmark, ablations.offline_stride_sweep, workload,
                    sized, strides=(32, 16, 8))
    print_header("Ablation: OFF-LINE weighted IPC vs search stride (%s)"
                 % WORKLOAD)
    print(format_table(["stride (registers)", "weighted IPC"], rows))
    values = dict(rows)
    # Shape: finer search never hurts materially.
    assert values[8] >= values[32] - 0.03
