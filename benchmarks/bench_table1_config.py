"""Table 1 — SMT simulator settings.

Reports the modelled machine (paper preset and the scaled preset actually
used by the harness) and asserts the paper preset matches Table 1 exactly.
"""

from benchmarks.conftest import print_header, run_once
from repro.experiments.report import format_table
from repro.experiments.tables import table1_configuration
from repro.pipeline.config import SMTConfig


def test_table1_configuration(benchmark, scale):
    def experiment():
        return {
            "paper": table1_configuration(SMTConfig.paper()),
            "scaled": table1_configuration(scale.config),
        }

    result = run_once(benchmark, experiment)
    print_header("Table 1: machine configuration (paper preset)")
    print(format_table(["parameter", "value"], result["paper"]))
    print_header("Table 1 (scaled preset used by this harness)")
    print(format_table(["parameter", "value"], result["scaled"]))

    paper = dict(result["paper"])
    assert paper["Bandwidth"] == "8-Fetch, 8-Issue, 8-Commit"
    assert paper["Queue size"] == "32-IFQ, 80-Int IQ, 80-FP IQ, 256-LSQ"
    assert paper["Rename reg / ROB"] == "256-Int, 256-FP / 512 entry"
    assert "6-Int Add, 3-Int Mul/Div, 4-Mem Port" in paper["Functional unit"]
    assert paper["Branch predictor"] == "Hybrid 8192-entry gshare/2048-entry Bimod"
    assert paper["UL2 config"].startswith("1024kbyte")
    assert paper["Mem config"].startswith("300 cycle")
