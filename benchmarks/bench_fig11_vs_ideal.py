"""Figure 11 — hill-climbing vs the ideal (checkpoint-replay) learners.

2-thread: HILL-WIPC vs OFF-LINE; 4-thread: DCRA vs HILL-WIPC vs RAND-HILL.
Paper result: hill-climbing achieves 96.6% of OFF-LINE and 94.1% of
RAND-HILL; RAND-HILL beats DCRA by 7.4%.  Reproduced shape: HILL recovers
most of the ideal learners' performance, and RAND-HILL beats or matches
DCRA.  Each row carries the SM/LG(H/L) label used for the paper's
per-application analysis.
"""

from benchmarks.conftest import print_header, run_once
from repro.experiments.figures import fig11_vs_ideal
from repro.experiments.report import format_table


def test_fig11_vs_ideal(benchmark, scale):
    # The ideal learners replay every epoch many times; bound cost with a
    # smaller per-group subset and window.
    sized = scale.with_overrides(
        workloads_per_group=min(scale.workloads_per_group or 2, 2),
        epochs=min(scale.epochs, 20),
    )
    result = run_once(benchmark, fig11_vs_ideal, sized)

    print_header("Figure 11 (top): HILL-WIPC vs OFF-LINE, 2-thread")
    print(format_table(
        ["workload", "group", "label", "behavior", "HILL", "OFF-LINE"],
        [[name, group, label, behavior, values["HILL"], values["OFF-LINE"]]
         for name, group, values, label, behavior in result["rows2"]],
    ))
    print_header("Figure 11 (bottom): DCRA vs HILL-WIPC vs RAND-HILL, "
                 "4-thread")
    print(format_table(
        ["workload", "group", "label", "DCRA", "HILL", "RAND-HILL"],
        [[name, group, label, values["DCRA"], values["HILL"],
          values["RAND-HILL"]] for name, group, values, label
         in result["rows4"]],
    ))
    print("\nHILL fraction of OFF-LINE:  %.3f" %
          result["hill_fraction_of_offline"])
    print("HILL fraction of RAND-HILL: %.3f" %
          result["hill_fraction_of_rand_hill"])
    print("RAND-HILL gain over DCRA:   %+.1f%%" %
          result["rand_hill_gain_over_dcra"])

    # Shape: on-line learning recovers most of the ideal performance.
    assert result["hill_fraction_of_offline"] >= 0.75
    assert result["hill_fraction_of_rand_hill"] >= 0.75
    # Shape: the checkpointed ideal beats or matches DCRA.
    assert result["rand_hill_gain_over_dcra"] >= -4.0
    # Labels are well-formed.
    for __, __, __, label, __ in result["rows2"]:
        assert label == "SM" or label.startswith("LG")
