"""Figure 7 — hill-width measurements across the 2-thread workloads.

For each workload, hill-width_N averaged over all OFF-LINE epochs.  Paper
result: most workloads (14/21) have sharp peaks (small hill-width at
N=0.99); a few (equake-bzip2, mcf-eon, fma3d-mesa, gzip-bzip2,
lucas-crafty) have dull peaks.  Reproduced shape: widths vary by an order
of magnitude across workloads, and ILP2 pairs that fit the machine have
duller peaks than large MEM2 pairs on average.
"""

from benchmarks.conftest import print_header, run_once
from repro.experiments.figures import fig7_hill_widths
from repro.experiments.report import format_table, mean


def test_fig7_hill_widths(benchmark, scale):
    result = run_once(benchmark, fig7_hill_widths, scale)

    levels = list(result["levels"])
    print_header("Figure 7: hill-width_N per workload (registers, averaged "
                 "over epochs)")
    print(format_table(
        ["workload", "group"] + ["N=%.2f" % level for level in levels],
        [[name, group] + ["%.0f" % widths[level] for level in levels]
         for name, group, widths in result["rows"]],
        float_digits=0,
    ))

    total = result["total"]
    sharpest = min(widths[0.99] for __, __, widths in result["rows"])
    dullest = max(widths[0.90] for __, __, widths in result["rows"])
    # Shape: the sharpest peak is much narrower than the machine, and
    # widths spread substantially across workloads.
    assert sharpest <= total / 2
    assert dullest >= sharpest
    for __, __, widths in result["rows"]:
        ordered = [widths[level] for level in sorted(widths, reverse=True)]
        assert ordered == sorted(ordered)  # monotone per workload
