"""Section 5 — phase detection and prediction extension.

HILL-WIPC vs PHASE-HILL (BBV phase table + RLE Markov predictor reusing
learned partitions).  Paper result: +0.4% overall, concentrated in
temporally-limited workloads (+2.1% on TL).  Reproduced shape: the
extension is roughly performance-neutral-to-positive overall (small
effect), and the phase machinery actually detects and reuses phases.
"""

from benchmarks.conftest import print_header, run_once
from repro.experiments.figures import sec5_phase_hill
from repro.experiments.report import format_table
from repro.experiments.runner import select_workloads


def test_sec5_phase_hill(benchmark, scale, engine):
    workloads = select_workloads(("MIX2", "MEM2", "MIX4"), scale)
    result = run_once(benchmark, sec5_phase_hill, scale, workloads=workloads,
                      engine=engine)

    print_header("Section 5: HILL vs PHASE-HILL (weighted IPC)")
    print(format_table(
        ["workload", "group", "HILL", "PHASE-HILL"],
        [[name, group, values["HILL"], values["PHASE-HILL"]]
         for name, group, values in result["rows"]],
    ))
    print("\noverall PHASE-HILL boost: %+.2f%%" % result["overall_boost_pct"])

    # Shape: a small effect either way — the paper reports +0.4% overall.
    assert -5.0 <= result["overall_boost_pct"] <= 10.0
    # The phase machinery must not be catastrophic on any workload.
    for __, __, values in result["rows"]:
        assert values["PHASE-HILL"] >= 0.82 * values["HILL"]
