"""Figure 6 — hill-width definition on a real epoch curve.

Takes one OFF-LINE epoch's performance-vs-partitioning curve and reports
hill-width_N at the paper's levels.  Reproduced shape: the curve is
hill-like (peak above edges) and widths grow as N falls.
"""

from benchmarks.conftest import print_header, run_once
from repro.experiments.figures import fig6_hill_width_demo
from repro.experiments.report import format_table


def test_fig6_hill_width_demo(benchmark, scale):
    result = run_once(benchmark, fig6_hill_width_demo, scale)

    print_header("Figure 6: epoch %d of %s — weighted IPC vs partitioning"
                 % (result["epoch"], result["workload"]))
    peak = max(value for __, value in result["curve"])
    for share, value in result["curve"]:
        bar = "#" * int(50 * value / peak) if peak > 0 else ""
        print("share %4d | %-50s %.3f" % (share, bar, value))
    print(format_table(
        ["level N", "hill-width_N (registers)"],
        [[level, width] for level, width in sorted(result["widths"].items(),
                                                   reverse=True)],
    ))

    widths = result["widths"]
    ordered = [widths[level] for level in sorted(widths, reverse=True)]
    # Shape: widths are monotonically non-decreasing as N falls.
    assert ordered == sorted(ordered)
    assert all(0 <= width <= result["total"] for width in ordered)


def test_fig6_hypothetical_shape(benchmark):
    """The Figure 6 illustration itself: a synthetic single-peak curve has
    the exact widths the construction implies (unit test at bench level so
    the demo's analysis path is exercised end to end)."""
    from repro.analysis.hill_width import hill_width

    def experiment():
        # Value drops 0.008 per 8-register step: level 0.99 admits +/-8,
        # 0.97 admits +/-24 (0.976 at 24, 0.968 at 32), 0.95 admits +/-48.
        curve = [(position, 1.0 - abs(position - 128) * 0.001)
                 for position in range(0, 257, 8)]
        return {
            level: hill_width(curve, level) for level in (0.99, 0.97, 0.95)
        }

    widths = run_once(benchmark, experiment)
    assert widths[0.99] == 16
    assert widths[0.97] == 48
    assert widths[0.95] == 96
