#!/usr/bin/env python
"""Why learning wins: the paper's Section 3.3.2 cases, measured.

For each Table 2 benchmark, runs it stand-alone twice — once with a
shallow window (a quarter of the rename registers) and once with the full
machine — and reports the deep-window gain next to its L2 miss intensity.

* High gain + high MPKI = *cache-miss clustering*: give this thread a big
  partition and it overlaps its misses.
* Low gain + low MPKI = *compute-intensive low-ILP*: this thread can't use
  a big partition; indicator-driven policies over-provision it anyway.

Usage::

    python examples/qualitative_cases.py [benchmark ...]
"""

import sys

from repro.analysis.qualitative import window_utility
from repro.experiments.report import format_table
from repro.pipeline.config import SMTConfig
from repro.workloads.spec2000 import PROFILES, get_profile


def main():
    names = sys.argv[1:] or list(PROFILES)
    config = SMTConfig.fast()
    rows = []
    for name in names:
        utility = window_utility(get_profile(name), config,
                                 warmup=8000, window=16000)
        if utility.is_memory_intensive and utility.gain >= 1.25:
            case = "cache-miss clustering"
        elif utility.is_low_ilp_compute:
            case = "low-ILP compute"
        else:
            case = "-"
        rows.append([
            name,
            "%.2f" % utility.shallow_ipc,
            "%.2f" % utility.deep_ipc,
            "%.2fx" % utility.gain,
            "%.1f" % utility.l2_misses_per_kilo,
            case,
        ])
        print("measured %-8s gain %sx" % (name, rows[-1][3]))
    print()
    print(format_table(
        ["benchmark", "IPC (1/4 window)", "IPC (full)", "deep gain",
         "L2 MPKI", "paper case"],
        rows,
    ))


if __name__ == "__main__":
    main()
