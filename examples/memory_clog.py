#!/usr/bin/env python
"""Resource clog in action: a memory-intensive thread co-scheduled with a
compute thread, under every policy family the paper discusses.

This is the scenario the paper's introduction motivates: without explicit
resource control, the thread suffering long-latency cache misses (art)
fills the shared issue queue/ROB with stalled instructions and starves the
compute thread (gzip).  FLUSH recovers by squashing; DCRA contains the
slow thread with bigger-but-bounded partitions; hill-climbing learns the
best split from end-performance feedback.

Usage::

    python examples/memory_clog.py
"""

from repro import (
    DCRAPolicy,
    DGPolicy,
    EpochController,
    FlushPolicy,
    FPGPolicy,
    HillClimbingPolicy,
    ICountPolicy,
    PDGPolicy,
    SMTConfig,
    SMTProcessor,
    StallFlushPolicy,
    StallPolicy,
    StaticPartitionPolicy,
    get_workload,
)
from repro.experiments.report import format_table

WARMUP_CYCLES = 12000
EPOCH_SIZE = 4096
EPOCHS = 32


def main():
    workload = get_workload("art-gzip")
    print("workload: %s  (MEM thread + ILP thread)\n" % workload.name)
    rows = []
    for policy in (ICountPolicy(), FPGPolicy(), StallPolicy(),
                   FlushPolicy(), StallFlushPolicy(), DGPolicy(),
                   PDGPolicy(), StaticPartitionPolicy(), DCRAPolicy(),
                   HillClimbingPolicy()):
        proc = SMTProcessor(SMTConfig.fast(), workload.profiles, seed=0,
                            policy=policy)
        proc.run(WARMUP_CYCLES)
        controller = EpochController(proc, epoch_size=EPOCH_SIZE)
        controller.run(EPOCHS)
        ipcs = controller.overall_ipcs()
        stats = proc.stats
        rows.append([
            policy.name,
            "%.3f" % ipcs[0],
            "%.3f" % ipcs[1],
            "%.3f" % sum(ipcs),
            sum(stats.flushes),
            sum(stats.lock_cycles),
            sum(stats.partition_stall_cycles),
        ])
    print(format_table(
        ["policy", "IPC art", "IPC gzip", "IPC total", "flushes",
         "lock cyc", "part-stall cyc"],
        rows,
    ))


if __name__ == "__main__":
    main()
