#!/usr/bin/env python
"""The Section 5 extension: phase detection and prediction.

Hill-climbing re-learns the best partitioning from scratch whenever the
workload's behaviour changes.  PHASE-HILL classifies each epoch's BBV
signature into a phase ID, remembers the anchor learned for each phase, and
restores it instantly when a phase recurs (plus a Markov predictor that
pre-applies the next phase's anchor).

This example uses a workload with strong phase behaviour (gzip and vortex
are both "High"-variation Table 2 benchmarks) and reports the phase
statistics alongside the performance comparison.

Usage::

    python examples/phase_adaptive.py [workload]
"""

import sys

from repro import get_workload
from repro.core.controller import EpochController
from repro.core.hill_climbing import HillClimbingPolicy
from repro.core.metrics import WeightedIPC
from repro.core.phase_hill import PhaseHillPolicy
from repro.experiments.runner import ExperimentScale, solo_ipcs
from repro.pipeline.processor import SMTProcessor


def run(workload, policy, scale):
    proc = SMTProcessor(scale.config, workload.profiles, seed=scale.seed,
                        policy=policy)
    proc.run(scale.warmup)
    controller = EpochController(proc, epoch_size=scale.epoch_size)
    controller.run(scale.epochs)
    return controller


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "gzip-vortex"
    workload = get_workload(name)
    scale = ExperimentScale.bench().with_overrides(epochs=48)
    metric = WeightedIPC()
    singles = solo_ipcs(workload, scale)

    plain = HillClimbingPolicy(metric=WeightedIPC(),
                               software_cost=scale.hill_software_cost,
                               sample_period=scale.hill_sample_period)
    phased = PhaseHillPolicy(metric=WeightedIPC(),
                             software_cost=scale.hill_software_cost,
                             sample_period=scale.hill_sample_period)

    print("workload: %s (phase-variation members: %s)\n" % (
        workload.name,
        ", ".join("%s=%s" % (profile.name, profile.freq.value)
                  for profile in workload.profiles),
    ))
    for label, policy in (("HILL", plain), ("PHASE-HILL", phased)):
        controller = run(workload, policy, scale)
        value = metric.value(controller.overall_ipcs(), singles)
        line = "%-11s weighted IPC %.3f" % (label, value)
        if isinstance(policy, PhaseHillPolicy):
            line += ("   [phases seen: %d, switches: %d, anchor reuses: %d, "
                     "predictor accuracy: %.0f%%]" % (
                         len(policy.phase_table), policy.phase_switches,
                         policy.phase_reuses,
                         100 * policy.phase_predictor.accuracy))
        print(line)


if __name__ == "__main__":
    main()
