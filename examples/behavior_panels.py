#!/usr/bin/env python
"""Figure 12, live: the time-varying behaviour of hill-climbing against
the per-epoch ideal, as an ASCII gray-scale panel.

The hill climber's machine runs continuously; at each epoch boundary
OFF-LINE's exhaustive sweep replays the epoch from a checkpoint.  Rows are
partition settings, columns are epochs, shading is the epoch's weighted
IPC at that partitioning, ``O`` marks the per-epoch best and ``+`` the
hill climber's actual setting — the same plot the paper uses to identify
the TS/SS/TL/SL/JL cases.

Usage::

    python examples/behavior_panels.py [workload] [epochs]
"""

import sys

from repro import get_workload
from repro.analysis.behavior import classify_behavior
from repro.core.hill_climbing import HillClimbingPolicy
from repro.core.metrics import WeightedIPC
from repro.experiments.report import render_partition_heatmap
from repro.experiments.runner import ExperimentScale
from repro.experiments.sync import policy_synchronized_timeline


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "art-mcf"
    epochs = int(sys.argv[2]) if len(sys.argv) > 2 else 20
    workload = get_workload(name)
    scale = ExperimentScale.bench().with_overrides(epochs=epochs, stride=16)

    def hill():
        return HillClimbingPolicy(metric=WeightedIPC(),
                                  software_cost=scale.hill_software_cost,
                                  sample_period=scale.hill_sample_period)

    print("synchronizing OFF-LINE to HILL-WIPC on %s (%d epochs)..."
          % (workload.name, epochs))
    timeline = policy_synchronized_timeline(workload, hill, scale,
                                            epochs=epochs)
    print()
    print(render_partition_heatmap(timeline.offline_epochs,
                                   timeline.policy_shares))
    behavior = classify_behavior(timeline.offline_epochs,
                                 scale.config.rename_int)
    hill_mean = sum(timeline.series["HILL"]) / epochs
    ideal_mean = sum(timeline.series["OFF-LINE"]) / epochs
    print("\nbehaviour: %s (%s)" % (behavior.value, behavior.name))
    print("HILL achieves %.1f%% of the per-epoch ideal"
          % (100 * hill_mean / ideal_mean))


if __name__ == "__main__":
    main()
