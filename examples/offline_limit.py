#!/usr/bin/env python
"""The Section 3 limit study on one workload.

Runs the OFF-LINE exhaustive learner — checkpoint the machine at each epoch
boundary, replay the epoch under every candidate partitioning, keep the
best — and compares its weighted IPC against ICOUNT, FLUSH and DCRA.  Also
prints one epoch's full performance-vs-partitioning curve, the shape that
motivates hill-climbing.

Usage::

    python examples/offline_limit.py [workload] [epochs]
"""

import sys

from repro import get_workload
from repro.core.metrics import WeightedIPC
from repro.experiments.figures import run_offline
from repro.experiments.runner import (
    ExperimentScale,
    baseline_factories,
    compare_policies,
    solo_ipcs,
)
from repro.experiments.report import format_table, pct_gain


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "art-mcf"
    epochs = int(sys.argv[2]) if len(sys.argv) > 2 else 16
    workload = get_workload(name)
    scale = ExperimentScale.bench().with_overrides(epochs=epochs, stride=8)
    metric = WeightedIPC()

    print("running baselines on %s ..." % workload.name)
    results = compare_policies(workload, baseline_factories(), scale)
    values = {policy: result.weighted_ipc
              for policy, result in results.items()}

    print("running OFF-LINE exhaustive learning (%d epochs x %d trials)..."
          % (epochs, len(run_curve_preview(scale))))
    learner = run_offline(workload, scale, metric)
    singles = solo_ipcs(workload, scale)
    values["OFF-LINE"] = metric.value(learner.overall_ipcs(), singles)

    rows = [[policy, value, "%+.1f%%" % pct_gain(values["OFF-LINE"], value)
             if policy != "OFF-LINE" else "-"]
            for policy, value in values.items()]
    print()
    print(format_table(["policy", "weighted IPC", "OFF-LINE gain"], rows))

    middle = learner.epochs[len(learner.epochs) // 2]
    print("\nepoch %d performance curve (thread-0 share -> weighted IPC):"
          % middle.epoch_id)
    peak = max(value for __, value in middle.curve_over_first_share())
    for share, value in middle.curve_over_first_share():
        bar = "#" * int(40 * value / peak) if peak > 0 else ""
        marker = " <- best" if (share,) == middle.best_shares[:1] else ""
        print("  %4d | %-40s %.3f%s" % (share, bar, value, marker))


def run_curve_preview(scale):
    from repro.core.partition import share_grid

    return list(share_grid(2, scale.config.rename_int,
                           scale.config.min_partition, scale.stride))


if __name__ == "__main__":
    main()
