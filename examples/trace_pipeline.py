#!/usr/bin/env python
"""Watch the pipeline execute: per-instruction stage traces.

Attaches a :class:`PipelineTracer` and renders the classic pipeline
diagram (F=fetch, D=dispatch, I=issue, C=complete, R=retire, x=squash) for
a short window, once with a fair partition and once with the MEM thread
starved — the effect of partitioning is directly visible in the rows.

Usage::

    python examples/trace_pipeline.py [workload]
"""

import sys

from repro import SMTConfig, SMTProcessor, StaticPartitionPolicy, get_workload
from repro.pipeline.trace import PipelineTracer


def show(workload, shares, label):
    proc = SMTProcessor(SMTConfig.tiny(), workload.profiles, seed=0,
                        policy=StaticPartitionPolicy(shares))
    proc.run(1500)  # reach steady state before tracing
    proc.trace = PipelineTracer(capacity=512)
    proc.run(120)
    print("=== %s (shares %s) ===" % (label, shares or "equal"))
    print(proc.trace.render(max_rows=24))
    print("committed so far: %s, avg fetch-to-retire latency %.1f cycles\n"
          % (proc.stats.committed, proc.trace.average_latency()))


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "art-gzip"
    workload = get_workload(name)
    print("workload: %s (thread 0 = %s, thread 1 = %s)\n"
          % (workload.name, *workload.benchmarks))
    show(workload, None, "fair split")
    total = SMTConfig.tiny().rename_int
    show(workload, [total - 6, 6], "thread 1 starved")


if __name__ == "__main__":
    main()
