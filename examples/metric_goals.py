#!/usr/bin/env python
"""Optimizing for a user-defined performance goal.

A unique capability of learning-based resource distribution (Section 2):
by swapping the feedback metric, the same hill-climbing hardware optimizes
throughput (average IPC), execution-time reduction (weighted IPC), or a
performance/fairness balance (harmonic mean of weighted IPC).  Baseline
policies cannot retarget like this.

The script runs one workload three times — once per feedback metric — and
scores every run under all three evaluation metrics.  The diagonal
(matched feedback/evaluation) should dominate its column.

Usage::

    python examples/metric_goals.py [workload]
"""

import sys

from repro import (
    AvgIPC,
    EpochController,
    HarmonicMeanWeightedIPC,
    HillClimbingPolicy,
    SMTConfig,
    SMTProcessor,
    WeightedIPC,
    get_workload,
)
from repro.experiments.runner import ExperimentScale, solo_ipcs
from repro.experiments.report import format_table

EPOCH_SIZE = 4096
EPOCHS = 40


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "art-gzip"
    workload = get_workload(name)
    scale = ExperimentScale.bench().with_overrides(
        epoch_size=EPOCH_SIZE, epochs=EPOCHS)
    singles = solo_ipcs(workload, scale)
    metrics = [AvgIPC(), WeightedIPC(), HarmonicMeanWeightedIPC()]

    rows = []
    for feedback in metrics:
        policy = HillClimbingPolicy(metric=feedback,
                                    software_cost=scale.hill_software_cost,
                                    sample_period=scale.hill_sample_period)
        proc = SMTProcessor(scale.config, workload.profiles, seed=0,
                            policy=policy)
        proc.run(scale.warmup)
        controller = EpochController(proc, epoch_size=EPOCH_SIZE)
        controller.run(EPOCHS)
        ipcs = controller.overall_ipcs()
        rows.append(
            ["HILL-%s" % feedback.name]
            + ["%.3f" % metric.value(ipcs, singles) for metric in metrics]
        )
    print("workload: %s" % workload.name)
    print(format_table(
        ["feedback metric \\ evaluated as"] + [metric.name for metric in metrics],
        rows,
    ))
    print("\nEach row is one learning run; matched feedback should win its "
          "column.")


if __name__ == "__main__":
    main()
