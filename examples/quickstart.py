#!/usr/bin/env python
"""Quickstart: run one multiprogrammed workload under hill-climbing
resource distribution and compare it with plain ICOUNT.

Usage::

    python examples/quickstart.py [workload] [epochs]

Defaults to the paper's running example, art-mcf (two memory-intensive
SPEC CPU2000 threads), on the half-scale machine.
"""

import sys

from repro import (
    EpochController,
    HillClimbingPolicy,
    ICountPolicy,
    SMTConfig,
    SMTProcessor,
    get_workload,
)

WARMUP_CYCLES = 12000
EPOCH_SIZE = 4096


def run(workload, policy, epochs):
    proc = SMTProcessor(SMTConfig.fast(), workload.profiles, seed=0,
                        policy=policy)
    proc.run(WARMUP_CYCLES)
    controller = EpochController(proc, epoch_size=EPOCH_SIZE)
    controller.run(epochs)
    return controller


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "art-mcf"
    epochs = int(sys.argv[2]) if len(sys.argv) > 2 else 32
    workload = get_workload(name)
    print("workload %s (%s): %s" % (
        workload.name, workload.group, ", ".join(workload.benchmarks)))

    for policy in (ICountPolicy(), HillClimbingPolicy()):
        controller = run(workload, policy, epochs)
        ipcs = controller.overall_ipcs()
        print("%-18s per-thread IPC %s  aggregate %.3f" % (
            policy.name,
            " ".join("%.3f" % ipc for ipc in ipcs),
            sum(ipcs),
        ))
        if isinstance(policy, HillClimbingPolicy):
            print("%-18s learned partition (int rename regs): %s" % (
                "", policy.current_anchor))


if __name__ == "__main__":
    main()
