#!/usr/bin/env python
"""Record a workload to a trace file and replay it through the pipeline.

Trace files freeze a workload independent of the generator's RNG stream —
useful for archiving the exact instructions behind a result, or for
feeding externally produced traces to the simulator (any tool that can
write the one-line-per-instruction format can drive it).

Usage::

    python examples/record_replay.py [benchmark] [instructions]
"""

import sys
import tempfile

from repro import ICountPolicy, SMTConfig, SMTProcessor, get_profile
from repro.workloads.generator import SyntheticStream
from repro.workloads.tracefile import TraceStream, record_trace


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "gzip"
    count = int(sys.argv[2]) if len(sys.argv) > 2 else 20000
    profile = get_profile(name)

    with tempfile.NamedTemporaryFile(suffix=".trace", delete=False) as handle:
        path = handle.name
    stream = SyntheticStream(profile, 0, seed=42)
    record_trace(stream, count, path)
    print("recorded %d instructions of %s to %s" % (count, name, path))

    live = SMTProcessor(SMTConfig.fast(), [profile], seed=42,
                        policy=ICountPolicy())
    replayed = SMTProcessor(SMTConfig.fast(), [profile], seed=0,
                            policy=ICountPolicy(),
                            streams=[TraceStream(path)])
    cycles = 6000
    live.run(cycles)
    replayed.run(cycles)
    print("live generator: %6d committed in %d cycles (IPC %.2f)"
          % (live.stats.committed[0], cycles, live.stats.ipc()))
    print("trace replay:   %6d committed in %d cycles (IPC %.2f)"
          % (replayed.stats.committed[0], cycles, replayed.stats.ipc()))
    print("(identical while execution stays within the recorded window; "
          "the replay wraps afterwards)")


if __name__ == "__main__":
    main()
