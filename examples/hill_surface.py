#!/usr/bin/env python
"""The Figure 2 experiment as ASCII art: IPC of three co-scheduled threads
(mesa, vortex, fma3d by default) as the resource distribution varies.

Each cell replays the same interval from a checkpoint under a different
(mesa, vortex) share split; fma3d receives the remainder.  The hill shape —
a single broad peak falling off toward the starved corners — is what makes
gradient-guided learning effective.

Usage::

    python examples/hill_surface.py [bench0 bench1 bench2]
"""

import sys

from repro.analysis.surface import distribution_surface
from repro.experiments.runner import ExperimentScale
from repro.pipeline.processor import SMTProcessor
from repro.policies.static_partition import StaticPartitionPolicy
from repro.workloads.spec2000 import get_profile

SHADES = " .:-=+*#%@"


def main():
    names = sys.argv[1:4] if len(sys.argv) >= 4 else ["mesa", "vortex", "fma3d"]
    scale = ExperimentScale.bench()
    profiles = [get_profile(name) for name in names]
    proc = SMTProcessor(scale.config, profiles, seed=0,
                        policy=StaticPartitionPolicy())
    proc.run(scale.warmup)
    print("sweeping the %s distribution space (%d-cycle interval)..."
          % ("/".join(names), scale.epoch_size))
    surface = distribution_surface(proc, scale.epoch_size, step=scale.stride)

    values = surface.ipc
    low, high = min(values.values()), max(values.values())
    span = (high - low) or 1.0
    print("\nrows: %s share, cols: %s share, shade: aggregate IPC "
          "(%.2f .. %.2f)\n" % (names[0], names[1], low, high))
    header = "      " + "".join("%4d" % share for share in surface.share_axis)
    print(header)
    for share0 in surface.share_axis:
        cells = []
        for share1 in surface.share_axis:
            value = values.get((share0, share1))
            if value is None:
                cells.append("   .")
            else:
                shade = SHADES[int((value - low) / span * (len(SHADES) - 1))]
                cells.append("   " + shade)
        print("%5d %s" % (share0, "".join(cells)))
    print("\npeak IPC %.3f at shares %s (%s gets the remainder)"
          % (surface.peak_ipc, surface.peak_shares[:2], names[2]))


if __name__ == "__main__":
    main()
